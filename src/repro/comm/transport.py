"""Transport abstraction between the TxCache library and a cache node.

The paper's deployment runs each cache node as a standalone server that the
application servers reach over the network; this reproduction originally
wired the client library straight into in-process :class:`CacheServer`
objects.  :class:`CacheTransport` is the seam between the two worlds: the
cluster (and through it the client library) speaks only this protocol, and a
deployment chooses how each node is reached:

* :class:`InProcessTransport` — direct method calls on a local server, with
  zero overhead; behaviour is identical to the pre-transport code path.
* :class:`repro.cache.netserver.SocketTransport` — a length-prefixed framed
  protocol over TCP to a :class:`repro.cache.netserver.CacheServerProcess`,
  which is how a production topology (RPC cost, batching, node churn) is
  represented.

Both transports carry the invalidation stream as well: a transport is what
the deployment subscribes to the :class:`repro.comm.multicast.InvalidationBus`,
so invalidations follow the same path as cache operations regardless of how
the node is deployed.

The operations mirror the cache server's public surface: ``lookup``,
``multi_lookup`` (a batch of lookups/probes answered in one round trip),
``put``, ``probe``, ``was_ever_stored``, ``evict_stale``, ``clear`` and
``stats``, plus the key-migration operations used by the membership
subsystem (``extract_entries``, ``install_entries``, ``discard_keys``,
``keys``, ``watermark``), the autonomous-cluster-plane operations
(``gossip`` digest exchange, ``key_digest``/``keys_in_range`` for per-arc
anti-entropy planning), the invalidation-stream entry points
(``process_invalidation``, ``note_timestamp``) and lifecycle helpers
(``reset_stats``, ``close``).

Thread safety: implementations must be safe for concurrent calls from many
client threads, and ``close`` must be idempotent.  ``InProcessTransport``
inherits this from :class:`CacheServer`'s per-server lock (direct calls,
nothing to add); ``SocketTransport`` provides it either with a connection
pool (up to ``pool_size`` RPCs in flight, one per pooled connection) or, in
pipelined mode, by multiplexing any number of in-flight RPCs over one
socket — per-request ids, a reader thread demultiplexing responses (see
:mod:`repro.comm.wire` for the framing).
"""

from __future__ import annotations

import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.comm.multicast import InvalidationMessage

if TYPE_CHECKING:  # cache modules import repro.comm; avoid the import cycle
    from repro.cache.entry import CacheEntry, EntryRecord, LookupRequest, LookupResult
    from repro.cache.server import CacheServer, CacheServerStats
    from repro.db.invalidation import InvalidationTag
    from repro.interval import Interval

__all__ = [
    "CacheTransport",
    "InProcessTransport",
    "RetryPolicy",
    "IDEMPOTENT_OPS",
    "current_deadline",
    "deadline_scope",
    "remaining_deadline",
]

#: Operations safe to retry blind: re-running one cannot change node state,
#: so a retry after an ambiguous connection failure (the response may or may
#: not have been computed) is always harmless.  ``put`` and the invalidation
#: ops are deliberately absent — a blind ``put`` retry could re-insert an
#: entry an invalidation already truncated, and replayed invalidation
#: batches would double-advance watermark accounting; their connection
#: errors surface to the caller exactly as before retries existed.
IDEMPOTENT_OPS = frozenset(
    {
        "lookup",
        "multi_lookup",
        "probe",
        "key_digest",
        "keys_in_range",
        "versions_of",
    }
)

#: Thread-local carrier of the current per-op deadline (monotonic seconds).
#: One budget spans dial + retries + replica failover for a single routed
#: cluster operation; transports consult it to cap their per-attempt waits.
_DEADLINE = threading.local()


def current_deadline() -> Optional[float]:
    """The active per-op deadline (``time.monotonic()`` terms), or None."""
    return getattr(_DEADLINE, "value", None)


def remaining_deadline() -> Optional[float]:
    """Seconds left in the active deadline scope (None when no scope)."""
    deadline = current_deadline()
    if deadline is None:
        return None
    return deadline - time.monotonic()


@contextmanager
def deadline_scope(deadline: Optional[float]) -> Iterator[None]:
    """Establish a per-op deadline for every transport call in the block.

    The deadline is an absolute ``time.monotonic()`` instant.  Scopes nest:
    the inner scope wins for its duration and the outer one is restored on
    exit.  Transports treat the scoped deadline as a *cap* on their own
    per-attempt timeouts (dial and RPC waits), so one budget bounds an
    entire routed operation — including retries and replica failover —
    instead of each attempt getting a fresh full timeout.
    """
    previous = getattr(_DEADLINE, "value", None)
    _DEADLINE.value = deadline
    try:
        yield
    finally:
        _DEADLINE.value = previous


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded-retry policy for idempotent cache reads.

    The cluster runs every routed read through :meth:`run`: transient
    connection failures against one node are retried up to
    ``max_attempts`` times with exponential backoff and jitter, all under
    the op's single deadline budget (``deadline_seconds``, defaulting to
    the cluster's ``rpc_timeout_seconds``).  Only operations in
    :data:`IDEMPOTENT_OPS` ever retry; everything else gets exactly one
    attempt, preserving the pre-retry failure semantics of writes.
    """

    #: Attempts per node per operation (1 = no retries).
    max_attempts: int = 3
    #: First backoff delay; doubles (times ``backoff_multiplier``) per retry.
    base_backoff_seconds: float = 0.01
    backoff_multiplier: float = 2.0
    #: Cap on any single backoff delay.
    max_backoff_seconds: float = 0.25
    #: Fraction of each delay randomized away (0 = deterministic ladder,
    #: 1 = anywhere in ``[0, delay]``).  Jitter decorrelates retry storms
    #: from many client threads hitting one recovering node.
    jitter_fraction: float = 0.5
    #: Deadline budget per routed operation; None uses the cluster's
    #: ``rpc_timeout_seconds``.
    deadline_seconds: Optional[float] = None

    def retries(self, op: str) -> bool:
        """Whether ``op`` may be retried blind."""
        return op in IDEMPOTENT_OPS and self.max_attempts > 1

    def backoff_seconds(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay before retry number ``attempt`` (0-based)."""
        delay = min(
            self.base_backoff_seconds * (self.backoff_multiplier**attempt),
            self.max_backoff_seconds,
        )
        if self.jitter_fraction > 0:
            delay *= 1.0 - self.jitter_fraction * rng.random()
        return delay

    def run(
        self,
        op: str,
        call: Callable[[], object],
        retry_on: Tuple[type, ...],
        rng: random.Random,
        sleep: Callable[[float], None] = time.sleep,
    ) -> object:
        """Run ``call`` with retries (idempotent ops only) under the deadline.

        Exceptions in ``retry_on`` are retried; anything else propagates
        immediately.  A retry is abandoned (the last failure re-raised)
        when the backoff delay would cross the active deadline scope —
        retried reads never exceed their propagated deadline.
        """
        if not self.retries(op):
            return call()
        attempt = 0
        while True:
            try:
                return call()
            except retry_on:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                delay = self.backoff_seconds(attempt - 1, rng)
                remaining = remaining_deadline()
                if remaining is not None and remaining <= delay:
                    raise
                if delay > 0:
                    sleep(delay)


@runtime_checkable
class CacheTransport(Protocol):
    """How the cluster reaches one cache node, wherever it runs."""

    #: Name of the cache node this transport reaches.
    name: str

    # ------------------------------------------------------------------
    # Cache operations
    # ------------------------------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        """Versioned lookup of ``key`` over the timestamp range ``[lo, hi]``."""

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        """Answer a batch of lookups/probes in one round trip, in order."""

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        """Insert one version of ``key``; True if it was stored."""

    def probe(self, key: str, lo: int, hi: int) -> bool:
        """Statistics-free hit check over ``[lo, hi]``."""

    def was_ever_stored(self, key: str) -> bool:
        """True if ``key`` has ever been inserted on the node."""

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        """Eagerly drop entries too stale to be useful; returns the count."""

    def clear(self) -> None:
        """Empty the node."""

    def stats(self) -> CacheServerStats:
        """A snapshot of the node's counters."""

    def reset_stats(self) -> None:
        """Zero the node's counters."""

    # ------------------------------------------------------------------
    # Key migration (cluster elasticity)
    # ------------------------------------------------------------------
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        """Page through the node's entries; returns (records, next_cursor)."""

    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        """Install migrated entry versions; returns how many were stored."""

    def discard_keys(self, keys: Sequence[str]) -> int:
        """Drop every version of the given keys (post-migration cleanup)."""

    def keys(self) -> List[str]:
        """The keys currently stored on the node (sorted, stats-free)."""

    def watermark(self) -> int:
        """The node's highest processed invalidation timestamp."""

    def versions_of(self, key: str) -> List[CacheEntry]:
        """All stored versions of one key (replica-placement introspection)."""

    # ------------------------------------------------------------------
    # Autonomous cluster plane (gossip membership + digest repair)
    # ------------------------------------------------------------------
    def gossip(self, digest: dict) -> dict:
        """Push-pull membership-digest exchange with the node's agent."""

    def key_digest(self, arcs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
        """Per-arc interval-set digests of the node's stored keys."""

    def keys_in_range(self, arcs: Sequence[Tuple[int, int]]) -> List[str]:
        """The stored keys whose hash points fall inside the given arcs."""

    # ------------------------------------------------------------------
    # Invalidation stream (InvalidationBus subscriber surface)
    # ------------------------------------------------------------------
    def process_invalidation(self, message: InvalidationMessage) -> None:
        """Forward one invalidation-stream message to the node."""

    def process_invalidations(self, messages: Sequence[InvalidationMessage]) -> None:
        """Forward a batch of invalidation messages, in timestamp order.

        The batched form exists for housekeeping-flushed delivery to
        out-of-process nodes: one ``invalidate_tags`` RPC instead of one
        round trip per message.  Semantically identical to calling
        :meth:`process_invalidation` once per message.
        """

    def note_timestamp(self, timestamp: int) -> None:
        """Advance the node's last-invalidation watermark without tags."""

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release any resources (connections) held by the transport."""


class InProcessTransport:
    """Zero-overhead transport to a cache server living in this process.

    Every operation is a direct method call, preserving the exact behaviour
    (results, statistics, LRU effects) of the pre-transport code path.
    """

    def __init__(self, server: CacheServer) -> None:
        self.server = server
        self.name = server.name
        #: Calls per operation name — what *would* have crossed the wire.
        #: The socket transport counts the same way, so tests can pin a
        #: code path's RPC cost (e.g. "a clean repair sends only digests")
        #: identically under every transport kind.
        self.op_counts: dict = {}

    def _count(self, op: str) -> None:
        self.op_counts[op] = self.op_counts.get(op, 0) + 1

    # -- cache operations ----------------------------------------------
    def lookup(self, key: str, lo: int, hi: int) -> LookupResult:
        self._count("lookup")
        return self.server.lookup(key, lo, hi)

    def multi_lookup(self, requests: Sequence[LookupRequest]) -> List[LookupResult]:
        self._count("multi_lookup")
        return self.server.multi_lookup(requests)

    def put(
        self,
        key: str,
        value: object,
        interval: Interval,
        tags: FrozenSet[InvalidationTag] = frozenset(),
    ) -> bool:
        self._count("put")
        return self.server.put(key, value, interval, tags)

    def probe(self, key: str, lo: int, hi: int) -> bool:
        self._count("probe")
        return self.server.probe(key, lo, hi)

    def was_ever_stored(self, key: str) -> bool:
        self._count("was_ever_stored")
        return self.server.was_ever_stored(key)

    def evict_stale(self, oldest_useful_timestamp: int) -> int:
        self._count("evict_stale")
        return self.server.evict_stale(oldest_useful_timestamp)

    def clear(self) -> None:
        self._count("clear")
        self.server.clear()

    def stats(self) -> CacheServerStats:
        self._count("stats")
        return self.server.stats_snapshot()

    def reset_stats(self) -> None:
        self._count("reset_stats")
        self.server.reset_stats()

    # -- key migration --------------------------------------------------
    def extract_entries(
        self, cursor: Optional[str] = None, limit: int = 64
    ) -> Tuple[List[EntryRecord], Optional[str]]:
        self._count("extract_entries")
        return self.server.extract_entries(cursor, limit)

    def install_entries(self, records: Sequence[EntryRecord]) -> int:
        self._count("install_entries")
        return self.server.install_entries(records)

    def discard_keys(self, keys: Sequence[str]) -> int:
        self._count("discard_keys")
        return self.server.discard_keys(keys)

    def keys(self) -> List[str]:
        self._count("keys")
        return self.server.keys()

    def watermark(self) -> int:
        self._count("watermark")
        return self.server.last_invalidation_timestamp

    def versions_of(self, key: str) -> List[CacheEntry]:
        self._count("versions_of")
        return self.server.versions_of(key)

    # -- autonomous cluster plane ---------------------------------------
    def gossip(self, digest: dict) -> dict:
        self._count("gossip")
        return self.server.gossip_exchange(digest)

    def key_digest(self, arcs: Sequence[Tuple[int, int]]) -> List[Tuple[int, int, int]]:
        self._count("key_digest")
        return self.server.key_digest(arcs)

    def keys_in_range(self, arcs: Sequence[Tuple[int, int]]) -> List[str]:
        self._count("keys_in_range")
        return self.server.keys_in_range(arcs)

    # -- invalidation stream -------------------------------------------
    def process_invalidation(self, message: InvalidationMessage) -> None:
        self._count("invalidate")
        self.server.process_invalidation(message)

    def process_invalidations(self, messages: Sequence[InvalidationMessage]) -> None:
        self._count("invalidate_tags")
        for message in messages:
            self.server.process_invalidation(message)

    def note_timestamp(self, timestamp: int) -> None:
        self._count("note_timestamp")
        self.server.note_timestamp(timestamp)

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Nothing to release for an in-process server."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InProcessTransport({self.name!r})"
