"""The framed wire codec shared by both ends of the cache protocol.

Two framings coexist on the same port (the server tells them apart by the
first byte a connection sends):

* **Legacy framing** — a 4-byte big-endian length followed by the pickled
  payload; exactly one request may be in flight per connection (the client
  writes a frame and blocks reading the response).  This is the original
  protocol of the socket transport and remains available behind
  ``SocketTransport(pipelined=False)`` for parity testing.
* **Multiplexed framing** — a connection opens with the single magic byte
  ``MUX_MAGIC``; every frame then starts with a struct-packed
  ``(request_id, opcode, length)`` header (:data:`MUX_HEADER`, ``!QBI``).
  Any number of requests may be in flight on one connection, and responses
  may arrive **out of order**: the ``request_id`` is how the client matches
  a response to its caller.  ``MUX_MAGIC`` is unambiguous because a legacy
  length header starting with ``0xA7`` would announce a ~2.8 GB frame, far
  beyond :data:`MAX_FRAME_BYTES`.

Opcodes name the cache operation numerically (:data:`OPCODES`), replacing
the pickled operation-name string of the legacy payload; the two response
opcodes ``OP_OK``/``OP_ERR`` carry the result.  The high bit of the opcode
byte (:data:`FLAG_OOB`) marks a body with out-of-band pickle buffers.

Codecs
------
Multiplexed frame *bodies* come in two codecs.  The default is a compact
tagged **binary** encoding (little-endian structs for keys, timestamps,
intervals, entry records and row dicts — see :func:`encode_binary_body`)
used for the hot operations (:data:`BINARY_OPS`); frames carrying it set
:data:`FLAG_BIN` in the opcode byte.  Everything else — maintenance ops,
values the binary codec has no tag for — stays **pickle**, so the two codecs
interleave freely on one connection and the server needs no per-connection
codec state.  A client that wants the binary codec opens with
:data:`MUX_MAGIC_BINARY` instead of :data:`MUX_MAGIC` and waits for the
server's one-byte answer (:data:`BINARY_ACK` or :data:`BINARY_NAK`), so a
mixed-version pair fails fast instead of mis-decoding.  Malformed binary
bodies raise :class:`WireDecodeError`, never anything that could take down
a reactor.

Copy discipline
---------------
Nothing in this module concatenates a header onto a payload.  Frames are
written as *vectors of buffers* via :func:`send_buffers` (``socket.sendmsg``
gather I/O, with a join fallback for sockets that lack it), and payloads are
pickled once with protocol 5.  Objects that support pickle-5 out-of-band
serialization (:class:`pickle.PickleBuffer` views over large values) are
sent as separate segments and reassembled on the far side from zero-copy
``memoryview`` slices of the received body.  :class:`WireCounters` tallies
the bytes that *were* copied (the fallback paths) so the wire
microbenchmark can assert the fast paths stay copy-free.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "LEGACY_HEADER",
    "MUX_HEADER",
    "MUX_MAGIC",
    "MUX_MAGIC_BINARY",
    "BINARY_ACK",
    "BINARY_NAK",
    "MAX_FRAME_BYTES",
    "OPCODES",
    "OP_NAMES",
    "OP_OK",
    "OP_ERR",
    "FLAG_OOB",
    "FLAG_BIN",
    "OPCODE_MASK",
    "BINARY_OPS",
    "BINARY_OPCODES",
    "WIRE_CODECS",
    "PICKLE_PROTOCOL",
    "WireCounters",
    "WIRE_COUNTERS",
    "WireDecodeError",
    "default_wire_codec",
    "resolve_wire_codec",
    "encode_body",
    "decode_body",
    "encode_binary_body",
    "decode_binary_body",
    "encode_binary_args",
    "encode_binary_args_into",
    "decode_binary_args",
    "EncodeScratch",
    "encode_mux_frame",
    "encode_binary_mux_frame",
    "encode_binary_request_frame",
    "encode_legacy_frame",
    "send_buffers",
    "recv_exactly",
]

#: Legacy frame header: payload length, 4-byte big-endian unsigned.
LEGACY_HEADER = struct.Struct("!I")

#: Multiplexed frame header: (request_id: u64, opcode: u8, length: u32).
MUX_HEADER = struct.Struct("!QBI")

#: First byte of a multiplexed connection.  Never a plausible legacy length
#: prefix (it would imply a frame over MAX_FRAME_BYTES).
MUX_MAGIC = 0xA7

#: First byte of a multiplexed connection that wants the binary body codec.
#: Like MUX_MAGIC, impossible as a legacy length prefix.  The server answers
#: with exactly one byte — BINARY_ACK or BINARY_NAK — before any frames.
MUX_MAGIC_BINARY = 0xA8

#: Handshake replies to MUX_MAGIC_BINARY: ACK (the server speaks the binary
#: codec) or NAK (pickle-only server; it closes right after).  A server that
#: predates the codec sends nothing and closes or stalls — the client treats
#: EOF/timeout on this byte as a NAK.
BINARY_ACK = 0x06
BINARY_NAK = 0x15

#: Upper bound on a single frame, as a sanity check against corrupt headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Wire pickle protocol.  Protocol 5 (Python 3.8+) supports out-of-band
#: buffers; it equals ``pickle.HIGHEST_PROTOCOL`` on every supported Python.
PICKLE_PROTOCOL = 5

#: Request opcodes: every cache operation the transport protocol names.
OPCODES = {
    "lookup": 1,
    "multi_lookup": 2,
    "put": 3,
    "probe": 4,
    "was_ever_stored": 5,
    "evict_stale": 6,
    "clear": 7,
    "stats": 8,
    "reset_stats": 9,
    "extract_entries": 10,
    "install_entries": 11,
    "discard_keys": 12,
    "keys": 13,
    "watermark": 14,
    "invalidate": 15,
    "note_timestamp": 16,
    "ping": 17,
    # Autonomous cluster plane: membership-digest exchange piggybacked on
    # the cache wire, and the per-arc interval-set digests anti-entropy
    # repair plans from instead of full key inventories.  All three ride
    # the generic pickle body (small dicts/int tuples, not hot-path data).
    "gossip": 18,
    "key_digest": 19,
    "keys_in_range": 20,
    # Wire-delivered invalidation: a batch of (timestamp, tags) pairs
    # applied in order by the receiving node.  Process-hosted nodes cannot
    # share the in-process InvalidationBus, so the stream crosses the wire
    # as this op — binary-codec eligible because tags are hot-path values
    # (_T_TAG) and housekeeping may flush large batches.
    "invalidate_tags": 21,
    # Stored-version introspection: the full entry list for one key, used
    # by replica-placement checks and debugging.  Process-hosted nodes
    # have no in-process server object to inspect, so the check crosses
    # the wire like everything else (pickle body — not a hot-path op).
    "versions_of": 22,
}

#: Response opcodes.
OP_OK = 0x40
OP_ERR = 0x41

#: Opcode flag: the body is segmented (pickle stream + out-of-band buffers).
FLAG_OOB = 0x80

#: Opcode flag: the body uses the binary codec (set per frame, so binary and
#: pickle bodies interleave on one connection and the server keeps no
#: per-connection codec state).  Request opcodes stay below 0x20 and the
#: response opcodes use 0x40/0x41, so the flag never collides.
FLAG_BIN = 0x20

#: Mask recovering the request/response opcode from a flagged opcode byte.
OPCODE_MASK = 0xFF & ~(FLAG_OOB | FLAG_BIN)

#: Hot operations whose request/response bodies use the binary codec on a
#: binary connection; maintenance ops keep pickle bodies.
BINARY_OPS = frozenset({"lookup", "multi_lookup", "put", "probe", "invalidate_tags"})

#: The wire body codecs a connection can negotiate.
WIRE_CODECS = ("binary", "pickle")

#: Reverse opcode table (diagnostics and the threaded server's dispatch).
OP_NAMES = {code: name for name, code in OPCODES.items()}

#: Opcodes of :data:`BINARY_OPS` (the client's per-call codec check).
BINARY_OPCODES = frozenset(OPCODES[name] for name in BINARY_OPS)


class WireDecodeError(ValueError):
    """A binary frame body could not be decoded (malformed or truncated)."""


def default_wire_codec() -> str:
    """The wire codec to use when none is configured.

    ``REPRO_WIRE_CODEC=binary|pickle`` overrides the default (``binary``) —
    the CI matrix uses this to run the parity suites against one codec at a
    time, mirroring ``REPRO_TRANSPORT``.
    """
    forced = os.environ.get("REPRO_WIRE_CODEC")
    if not forced:
        return "binary"
    if forced not in WIRE_CODECS:
        raise ValueError(
            f"REPRO_WIRE_CODEC={forced!r}; expected one of {list(WIRE_CODECS)}"
        )
    return forced


def resolve_wire_codec(codec: Optional[str]) -> str:
    """Validate an explicit codec choice, or fall back to the default."""
    if codec is None:
        return default_wire_codec()
    if codec not in WIRE_CODECS:
        raise ValueError(
            f"unknown wire codec {codec!r}; expected one of {list(WIRE_CODECS)}"
        )
    return codec

#: Sub-header of an out-of-band body: the number of segments, then one
#: length per segment.  Segment 0 is the pickle stream; segments 1.. are the
#: raw out-of-band buffers, in ``buffer_callback`` order.
_SEGMENT_COUNT = struct.Struct("!I")
_SEGMENT_LENGTH = struct.Struct("!I")

Buffer = Union[bytes, bytearray, memoryview]


class WireCounters:
    """Bytes-copied / frames-encoded accounting for the wire microbenchmark.

    The counters are advisory (plain int adds; exact under the GIL for the
    single-threaded microbenchmark that reads them) and cost one attribute
    update per frame on the hot path.
    """

    __slots__ = ("frames_encoded", "frames_decoded", "bytes_sent", "bytes_copied")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Frames encoded (requests and responses, both framings).
        self.frames_encoded = 0
        #: Frames decoded from received bytes.
        self.frames_decoded = 0
        #: Payload + header bytes handed to the socket layer.
        self.bytes_sent = 0
        #: Bytes that crossed an extra userspace copy (sendmsg-fallback
        #: joins and oob-subheader assembly).  Zero on the fast paths.
        self.bytes_copied = 0


#: Process-wide counters; the microbenchmark resets and reads them.
WIRE_COUNTERS = WireCounters()


# ----------------------------------------------------------------------
# Body codec (shared by both framings)
# ----------------------------------------------------------------------
def encode_body(payload: object) -> Tuple[int, List[Buffer]]:
    """Pickle ``payload`` into wire segments.

    Returns ``(flags, buffers)``.  With no out-of-band buffers (the common
    case: cache payloads are ordinary object graphs) ``flags`` is 0 and
    ``buffers`` is the one-element pickle stream.  When the payload carries
    :class:`pickle.PickleBuffer` views, ``flags`` is :data:`FLAG_OOB` and
    ``buffers`` is ``[subheader, pickle_stream, *raw_buffers]`` — the large
    buffers are never copied into the pickle stream.
    """
    oob: List[pickle.PickleBuffer] = []
    data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL, buffer_callback=oob.append)
    if not oob:
        return 0, [data]
    segments: List[Buffer] = [data]
    for buffer in oob:
        segments.append(buffer.raw())
    subheader = bytearray(_SEGMENT_COUNT.pack(len(segments)))
    for segment in segments:
        subheader += _SEGMENT_LENGTH.pack(len(segment))
    WIRE_COUNTERS.bytes_copied += len(subheader)  # only the tiny subheader
    return FLAG_OOB, [bytes(subheader)] + segments


def decode_body(flags: int, body: Buffer) -> object:
    """Decode one frame body produced by :func:`encode_body`.

    The out-of-band path slices ``body`` with zero-copy memoryviews and
    hands the raw buffers back to :func:`pickle.loads` via ``buffers=``.
    """
    if not flags & FLAG_OOB:
        return pickle.loads(body)
    view = memoryview(body)
    (count,) = _SEGMENT_COUNT.unpack_from(view, 0)
    offset = _SEGMENT_COUNT.size
    lengths = []
    for _ in range(count):
        (length,) = _SEGMENT_LENGTH.unpack_from(view, offset)
        offset += _SEGMENT_LENGTH.size
        lengths.append(length)
    segments = []
    for length in lengths:
        segments.append(view[offset : offset + length])
        offset += length
    return pickle.loads(segments[0], buffers=segments[1:])


# ----------------------------------------------------------------------
# Binary body codec (the hot-path alternative to pickle)
# ----------------------------------------------------------------------
# One tag byte per value.  Variable-length values (strings, bytes,
# containers) pack ``tag | length << 8`` into a single little-endian u32, so
# the common small string costs 4 bytes of overhead and one struct call;
# anything longer than 2**24-1 falls back to the pickle tag.  Record tags
# delegate to the ``pack_into``/``unpack_from`` methods the record types
# themselves define (cache/entry.py, interval.py); the pickle tag keeps the
# codec total, so arbitrary payloads still round-trip.
_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_LIST = 7
_T_TUPLE = 8
_T_DICT = 9
_T_FROZENSET = 10
_T_PICKLE = 11
_T_INTERVAL = 12
_T_INTERVAL_SET = 13
_T_LOOKUP_REQUEST = 14
_T_LOOKUP_RESULT = 15
_T_ENTRY_RECORD = 16
_T_TAG = 17
# Compact forms of the hottest shapes: a one-byte length for short strings
# and small containers, and a bare byte for small non-negative ints.  Each
# dodges a struct call (~135 ns, measured) — most of the per-column decode
# cost of a row dict.
_T_STR8 = 18
_T_INT8 = 19
_T_DICT8 = 20
_T_TUPLE8 = 21
_T_LIST8 = 22

#: Longest string/bytes/container the tagged-length u32 can describe.
_MAX_INLINE_LEN = (1 << 24) - 1

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_pack_u32 = _U32.pack
_unpack_u32 = _U32.unpack_from
_pack_i64 = _I64.pack
_unpack_i64 = _I64.unpack_from
_pack_f64 = _F64.pack
_unpack_f64 = _F64.unpack_from

# The record types live above this module in the import graph
# (repro.cache.__init__ imports netserver, which imports this module), so
# they are bound lazily on the first encode/decode instead of at import.
_Interval = None
_IntervalSet = None
_LookupRequest = None
_LookupResult = None
_EntryRecord = None
_InvalidationTag = None


def _bind_record_types() -> None:
    global _Interval, _IntervalSet, _LookupRequest, _LookupResult
    global _EntryRecord, _InvalidationTag
    from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
    from repro.db.invalidation import InvalidationTag
    from repro.interval import Interval, IntervalSet

    _Interval = Interval
    _IntervalSet = IntervalSet
    _LookupRequest = LookupRequest
    _LookupResult = LookupResult
    _EntryRecord = EntryRecord
    _InvalidationTag = InvalidationTag


def _enc_pickle(out: bytearray, value: object) -> None:
    data = pickle.dumps(value, protocol=PICKLE_PROTOCOL)
    out.append(_T_PICKLE)
    out += _pack_u32(len(data))
    out += data


def _enc_str_cold(out: bytearray, value: str, raw: bytes) -> None:
    """Slow half of string encoding: anything 255 bytes or longer."""
    if len(raw) <= _MAX_INLINE_LEN:
        out += _pack_u32(_T_STR | (len(raw) << 8))
        out += raw
    else:
        _enc_pickle(out, value)


def _enc_int_cold(out: bytearray, value: int) -> None:
    """Slow half of int encoding: anything outside the one-byte range."""
    try:
        packed = _pack_i64(value)
    except struct.error:
        _enc_pickle(out, value)
    else:
        out.append(_T_INT)
        out += packed


# The encoder/decoder below inline the string and small-int fast paths at
# every hot call site (dict and sequence element loops) instead of calling
# helpers: a helper call costs ~80 ns and a row dict pays it per column,
# which was the difference between beating pickle by 1.6x and by >2x.
# (The constants stay module globals on purpose: CPython 3.11+ inline-caches
# LOAD_GLOBAL, while hoisting them into keyword-only defaults costs ~200 ns
# of frame setup per call — measured slower on these recursive functions.)
def _enc_value(out: bytearray, value: object) -> None:
    kind = type(value)
    if kind is _LookupResult:
        # First compare on purpose: with scalars inlined into the container
        # loops and request args on their fixed layout, the values reaching
        # this dispatch on the hot path are result records and their tags.
        out.append(_T_LOOKUP_RESULT)
        value.pack_into(out, _enc_value)
    elif kind is _InvalidationTag:
        # The fields come straight out of the instance dict (InvalidationTag
        # is an ordinary, non-slotted dataclass) and the table/column
        # strings — short ASCII identifiers — take the inline str path.
        append = out.append
        append(_T_TAG)
        fields = value.__dict__
        for part in (fields["table"], fields["column"]):
            if type(part) is str:
                try:
                    raw = part.encode("utf-8")
                except UnicodeEncodeError:
                    _enc_pickle(out, part)
                    continue
                size = len(raw)
                if size < 255:
                    append(_T_STR8)
                    append(size)
                    out += raw
                else:
                    _enc_str_cold(out, part, raw)
            elif part is None:
                append(_T_NONE)
            else:
                _enc_value(out, part)
        _enc_value(out, fields["value"])
    elif kind is str:
        # Strict utf-8 with a pickle fallback: lone surrogates are rare
        # enough that routing them through pickle beats paying
        # surrogatepass on every ordinary string.
        try:
            raw = value.encode("utf-8")
        except UnicodeEncodeError:
            _enc_pickle(out, value)
            return
        size = len(raw)
        if size < 255:
            out.append(_T_STR8)
            out.append(size)
            out += raw
        else:
            _enc_str_cold(out, value, raw)
    elif kind is int:
        if 0 <= value <= 255:
            out.append(_T_INT8)
            out.append(value)
        else:
            _enc_int_cold(out, value)
    elif kind is dict:
        count = len(value)
        append = out.append
        if count < 256:
            append(_T_DICT8)
            append(count)
        elif count <= _MAX_INLINE_LEN:
            out += _pack_u32(_T_DICT | (count << 8))
        else:
            _enc_pickle(out, value)
            return
        for key, item in value.items():
            if type(key) is str:
                try:
                    raw = key.encode("utf-8")
                except UnicodeEncodeError:
                    _enc_pickle(out, key)
                else:
                    size = len(raw)
                    if size < 255:
                        append(_T_STR8)
                        append(size)
                        out += raw
                    else:
                        _enc_str_cold(out, key, raw)
            else:
                _enc_value(out, key)
            kind2 = type(item)
            if kind2 is str:
                try:
                    raw = item.encode("utf-8")
                except UnicodeEncodeError:
                    _enc_pickle(out, item)
                    continue
                size = len(raw)
                if size < 255:
                    append(_T_STR8)
                    append(size)
                    out += raw
                else:
                    _enc_str_cold(out, item, raw)
            elif kind2 is int:
                if 0 <= item <= 255:
                    append(_T_INT8)
                    append(item)
                else:
                    _enc_int_cold(out, item)
            elif kind2 is float:
                append(_T_FLOAT)
                out += _pack_f64(item)
            elif item is None:
                append(_T_NONE)
            else:
                _enc_value(out, item)
    elif kind is list or kind is tuple:
        count = len(value)
        append = out.append
        if count < 256:
            append(_T_TUPLE8 if kind is tuple else _T_LIST8)
            append(count)
        elif count <= _MAX_INLINE_LEN:
            out += _pack_u32((_T_LIST if kind is list else _T_TUPLE) | (count << 8))
        else:
            _enc_pickle(out, value)
            return
        for item in value:
            kind2 = type(item)
            if kind2 is str:
                try:
                    raw = item.encode("utf-8")
                except UnicodeEncodeError:
                    _enc_pickle(out, item)
                    continue
                size = len(raw)
                if size < 255:
                    append(_T_STR8)
                    append(size)
                    out += raw
                else:
                    _enc_str_cold(out, item, raw)
            elif kind2 is int:
                if 0 <= item <= 255:
                    append(_T_INT8)
                    append(item)
                else:
                    _enc_int_cold(out, item)
            elif item is None:
                append(_T_NONE)
            else:
                _enc_value(out, item)
    elif value is None:
        out.append(_T_NONE)
    elif kind is bool:
        out.append(_T_TRUE if value else _T_FALSE)
    elif kind is float:
        out.append(_T_FLOAT)
        out += _pack_f64(value)
    elif kind is _Interval:
        out.append(_T_INTERVAL)
        value.pack_into(out)
    elif kind is bytes:
        size = len(value)
        if size <= _MAX_INLINE_LEN:
            out += _pack_u32(_T_BYTES | (size << 8))
            out += value
        else:
            _enc_pickle(out, value)
    elif kind is _LookupRequest:
        out.append(_T_LOOKUP_REQUEST)
        value.pack_into(out)
    elif kind is _EntryRecord:
        out.append(_T_ENTRY_RECORD)
        value.pack_into(out, _enc_value)
    elif kind is _IntervalSet:
        out.append(_T_INTERVAL_SET)
        value.pack_into(out)
    elif kind is frozenset:
        if len(value) > _MAX_INLINE_LEN:
            _enc_pickle(out, value)
            return
        out += _pack_u32(_T_FROZENSET | (len(value) << 8))
        for item in value:
            _enc_value(out, item)
    else:
        _enc_pickle(out, value)


# Truncation discipline: the hot paths below slice without bounds checks.
# A short slice still decodes, but it leaves ``offset`` past the end of the
# buffer, so the next one-byte read raises IndexError (wrapped into
# WireDecodeError by decode_binary_body) — and a truncated *final* value is
# caught by decode_binary_body's exact-length check.  Either way malformed
# input surfaces as WireDecodeError without paying a compare per value.
# The compare chain is ordered by measured frequency on lookup round trips:
# with strings/ints/floats inlined into the container loops and requests on
# the fixed args layout, the values that actually reach this dispatch are
# result records, tags, and row dicts.  Each position down the chain costs
# ~18 ns per decoded value.
def _dec_value(buf: bytes, offset: int) -> Tuple[object, int]:
    tag = buf[offset]
    if tag == _T_LOOKUP_RESULT:
        return _LookupResult.unpack_from(buf, offset + 1, _dec_value)
    if tag == _T_TAG:
        # One tag per hit response makes this as hot as the result record
        # itself.  Table and column are short identifier strings and the
        # value is usually a small int or a string, so all three fields get
        # the inline fast paths before falling back to the generic decoder.
        offset += 1
        tag2 = buf[offset]
        if tag2 == _T_STR8:
            size = buf[offset + 1]
            offset += 2
            end = offset + size
            table = buf[offset:end].decode("utf-8")
            offset = end
        elif tag2 == _T_NONE:
            table = None
            offset += 1
        else:
            table, offset = _dec_value(buf, offset)
        tag2 = buf[offset]
        if tag2 == _T_STR8:
            size = buf[offset + 1]
            offset += 2
            end = offset + size
            column = buf[offset:end].decode("utf-8")
            offset = end
        elif tag2 == _T_NONE:
            column = None
            offset += 1
        else:
            column, offset = _dec_value(buf, offset)
        tag2 = buf[offset]
        if tag2 == _T_INT8:
            value = buf[offset + 1]
            offset += 2
        elif tag2 == _T_STR8:
            size = buf[offset + 1]
            offset += 2
            end = offset + size
            value = buf[offset:end].decode("utf-8")
            offset = end
        else:
            value, offset = _dec_value(buf, offset)
        # Bypass the frozen-dataclass __init__ (one object.__setattr__ per
        # field, ~2x the cost of the whole tag decode): InvalidationTag is
        # non-slotted, so the fields go straight into the instance dict.
        result = _InvalidationTag.__new__(_InvalidationTag)
        fields = result.__dict__
        fields["table"] = table
        fields["column"] = column
        fields["value"] = value
        return result, offset
    if tag == _T_DICT8:
        count = buf[offset + 1]
        offset += 2
        result = {}
        for _ in range(count):
            tag2 = buf[offset]
            if tag2 == _T_STR8:
                size = buf[offset + 1]
                offset += 2
                end = offset + size
                key = buf[offset:end].decode("utf-8")
                offset = end
            else:
                key, offset = _dec_value(buf, offset)
            tag2 = buf[offset]
            if tag2 == _T_STR8:
                size = buf[offset + 1]
                offset += 2
                end = offset + size
                item = buf[offset:end].decode("utf-8")
                offset = end
            elif tag2 == _T_INT8:
                item = buf[offset + 1]
                offset += 2
            elif tag2 == _T_FLOAT:
                item = _unpack_f64(buf, offset + 1)[0]
                offset += 9
            elif tag2 == _T_INT:
                item = _unpack_i64(buf, offset + 1)[0]
                offset += 9
            elif tag2 == _T_NONE:
                item = None
                offset += 1
            else:
                item, offset = _dec_value(buf, offset)
            result[key] = item
        return result, offset
    if tag == _T_STR8:
        size = buf[offset + 1]
        offset += 2
        end = offset + size
        return buf[offset:end].decode("utf-8"), end
    if tag == _T_INT8:
        return buf[offset + 1], offset + 2
    if tag == _T_FLOAT:
        return _unpack_f64(buf, offset + 1)[0], offset + 9
    if tag == _T_NONE:
        return None, offset + 1
    if tag == _T_TUPLE8 or tag == _T_LIST8:
        count = buf[offset + 1]
        offset += 2
        items = []
        for _ in range(count):
            tag2 = buf[offset]
            if tag2 == _T_STR8:
                size = buf[offset + 1]
                offset += 2
                end = offset + size
                item = buf[offset:end].decode("utf-8")
                offset = end
            elif tag2 == _T_INT8:
                item = buf[offset + 1]
                offset += 2
            elif tag2 == _T_INT:
                item = _unpack_i64(buf, offset + 1)[0]
                offset += 9
            elif tag2 == _T_NONE:
                item = None
                offset += 1
            else:
                item, offset = _dec_value(buf, offset)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE8 else items), offset
    if tag == _T_INT:
        return _unpack_i64(buf, offset + 1)[0], offset + 9
    if tag == _T_TRUE:
        return True, offset + 1
    if tag == _T_FALSE:
        return False, offset + 1
    if tag == _T_INTERVAL:
        return _Interval.unpack_from(buf, offset + 1)
    if tag == _T_STR:
        size = _unpack_u32(buf, offset)[0] >> 8
        offset += 4
        end = offset + size
        if end > len(buf):
            raise WireDecodeError("truncated string")
        return buf[offset:end].decode("utf-8"), end
    if tag == _T_DICT:
        count = _unpack_u32(buf, offset)[0] >> 8
        offset += 4
        result = {}
        for _ in range(count):
            key, offset = _dec_value(buf, offset)
            item, offset = _dec_value(buf, offset)
            result[key] = item
        return result, offset
    if tag == _T_LIST or tag == _T_TUPLE:
        count = _unpack_u32(buf, offset)[0] >> 8
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _dec_value(buf, offset)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_BYTES:
        size = _unpack_u32(buf, offset)[0] >> 8
        offset += 4
        end = offset + size
        if end > len(buf):
            raise WireDecodeError("truncated bytes")
        return buf[offset:end], end
    if tag == _T_LOOKUP_REQUEST:
        return _LookupRequest.unpack_from(buf, offset + 1)
    if tag == _T_ENTRY_RECORD:
        return _EntryRecord.unpack_from(buf, offset + 1, _dec_value)
    if tag == _T_INTERVAL_SET:
        return _IntervalSet.unpack_from(buf, offset + 1)
    if tag == _T_FROZENSET:
        count = _unpack_u32(buf, offset)[0] >> 8
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _dec_value(buf, offset)
            items.append(item)
        return frozenset(items), offset
    if tag == _T_PICKLE:
        size = _unpack_u32(buf, offset + 1)[0]
        offset += 5
        end = offset + size
        if end > len(buf):
            raise WireDecodeError("truncated pickle fallback")
        return pickle.loads(buf[offset:end]), end
    raise WireDecodeError(f"unknown value tag {tag}")


def encode_binary_body(payload: object) -> bytearray:
    """Encode ``payload`` with the binary codec into one body buffer."""
    if _Interval is None:
        _bind_record_types()
    out = bytearray()
    _enc_value(out, payload)
    return out


def decode_binary_body(body: Buffer) -> object:
    """Decode a binary frame body.

    Any malformed or truncated input raises :class:`WireDecodeError` — the
    reactor and the client reader rely on decode failures being typed and
    containable, exactly like a server-side dispatch error.
    """
    if _Interval is None:
        _bind_record_types()
    if type(body) is bytes:
        buf = body
    elif type(body) is memoryview:
        # Frame bodies arrive as a memoryview over exactly the body bytes;
        # unwrap instead of copying.
        base = body.obj
        buf = base if type(base) is bytes and len(base) == len(body) else bytes(body)
    else:
        buf = bytes(body)
    try:
        value, offset = _dec_value(buf, 0)
    except WireDecodeError:
        raise
    except Exception as exc:
        raise WireDecodeError(f"malformed binary body: {exc!r}") from exc
    if offset != len(buf):
        raise WireDecodeError(
            f"malformed binary body: {len(buf) - offset} trailing bytes"
        )
    return value


# ----------------------------------------------------------------------
# Fixed request-argument layout for the single-key hot ops
# ----------------------------------------------------------------------
#: Opcodes whose binary request bodies use the fixed layout of
#: :func:`encode_binary_args` instead of a tagged value walk.
_SINGLE_KEY_OPCODES = frozenset((OPCODES["lookup"], OPCODES["probe"]))

#: ``put`` gets its own fixed layout: key, packed interval, tag list,
#: then the value — everything but the value dodges the tagged walk.
_PUT_OPCODE = OPCODES["put"]

#: Request-body markers: a packed single-key layout, or a generic tagged
#: body for arguments the packed layout cannot carry.
_ARGS_PACKED = 1
_ARGS_TAGGED = 0

_QQ = struct.Struct("<qq")
_pack_qq = _QQ.pack
_unpack_qq = _QQ.unpack_from


def encode_binary_args_into(out: bytearray, opcode: int, args: object) -> None:
    """Append ``opcode``'s binary request body for ``args`` onto ``out``.

    The append-into form exists so a connection can reuse one scratch
    buffer across requests (:class:`EncodeScratch`); ``out`` may already
    hold earlier frames' bytes and only the tail belongs to this request.
    A fallback path that bails mid-encode rolls the buffer back to its
    entry length before re-encoding, so a shared buffer never keeps a
    half-written layout.
    """
    if _Interval is None:
        _bind_record_types()
    start = len(out)
    if opcode in _SINGLE_KEY_OPCODES:
        if type(args) is tuple and len(args) == 3:
            key, lo, hi = args
            if type(key) is str:
                try:
                    raw = key.encode("utf-8")
                    tail = _pack_qq(lo, hi)
                except (UnicodeEncodeError, struct.error, OverflowError, TypeError):
                    pass
                else:
                    append = out.append
                    append(_ARGS_PACKED)
                    size = len(raw)
                    if size < 255:
                        append(size)
                    else:
                        append(255)
                        out += _pack_u32(size)
                    out += raw
                    out += tail
                    return
        out.append(_ARGS_TAGGED)
        _enc_value(out, args)
        return
    if opcode == _PUT_OPCODE:
        if (
            type(args) is tuple
            and len(args) == 4
            and type(args[0]) is str
            and type(args[2]) is _Interval
            and type(args[3]) is frozenset
            and len(args[3]) < 255
        ):
            key, value, interval, tags = args
            try:
                raw = key.encode("utf-8")
                append = out.append
                append(_ARGS_PACKED)
                size = len(raw)
                if size < 255:
                    append(size)
                else:
                    append(255)
                    out += _pack_u32(size)
                out += raw
                interval.pack_into(out)
                append(len(tags))
                for tag in tags:
                    _enc_value(out, tag)
                _enc_value(out, value)
                return
            except (UnicodeEncodeError, struct.error, OverflowError, TypeError):
                del out[start:]  # roll back the partial packed layout
        out.append(_ARGS_TAGGED)
        _enc_value(out, args)
        return
    _enc_value(out, args)


def encode_binary_args(opcode: int, args: object) -> bytearray:
    """Encode a request argument tuple as ``opcode``'s binary body.

    ``lookup`` and ``probe`` — the single-key hot ops — skip the tagged
    value encoding entirely: their bodies are a marker byte, the key (one
    length byte, 255 escaping to a u32), and the two bounds as signed
    64-bit integers.  One struct call per request instead of a recursive
    value walk — the same trick memcached's binary protocol plays with its
    fixed GET header.  Arguments the fixed layout cannot carry (non-str
    key, bounds beyond 64 bits) fall back to a tagged body behind the
    marker byte, so the fast path never constrains the API.
    """
    out = bytearray()
    encode_binary_args_into(out, opcode, args)
    return out


class EncodeScratch:
    """A reusable encode buffer shared by every request on one connection.

    ``encode_binary_body`` allocates a fresh ``bytearray`` per request;
    on the multi-lookup batch path that allocation dominates small-batch
    encode cost.  The scratch instead appends each request's body at the
    current end of one long-lived buffer and hands back a ``memoryview``
    slice over the newly written region.  CPython shrinks a bytearray's
    allocation on ``del buf[:]``, so the buffer is never truncated —
    it grows monotonically and is replaced wholesale (counted in
    :attr:`allocations`) only once it exceeds ``limit_bytes``.

    Contract: the returned view **exports** the buffer, which blocks the
    resize any later append needs — the caller must ``release()`` the view
    (or let it die) before the next :meth:`encode_request_frame`.  The
    mux client does encode+send+release under its per-connection send
    lock, which also makes the scratch single-writer.
    """

    __slots__ = ("buffer", "limit_bytes", "allocations")

    def __init__(self, limit_bytes: int = 1 << 20) -> None:
        self.buffer = bytearray()
        self.limit_bytes = limit_bytes
        #: Buffers ever allocated (starts at 1; +1 per wholesale reset).
        #: The codec microbenchmark pins this at 1 across a whole batch
        #: of requests — the no-new-allocations claim.
        self.allocations = 1

    def encode_request_frame(
        self, request_id: int, opcode: int, args: object
    ) -> Tuple[Buffer, memoryview]:
        """Encode one request frame into the scratch.

        Returns ``(header, body_view)`` where ``body_view`` is a
        memoryview over this request's region of the shared buffer.
        """
        buf = self.buffer
        if len(buf) > self.limit_bytes:
            buf = self.buffer = bytearray()
            self.allocations += 1
        start = len(buf)
        try:
            encode_binary_args_into(buf, opcode, args)
        except BaseException:
            del buf[start:]  # keep the shared buffer consistent
            raise
        header = MUX_HEADER.pack(request_id, opcode | FLAG_BIN, len(buf) - start)
        WIRE_COUNTERS.frames_encoded += 1
        return header, memoryview(buf)[start:]


def decode_binary_args(opcode: int, body: Buffer) -> object:
    """Decode a binary request body for ``opcode``.

    The inverse of :func:`encode_binary_args`; malformed input raises
    :class:`WireDecodeError` exactly like :func:`decode_binary_body`.
    """
    is_put = opcode == _PUT_OPCODE
    if opcode not in _SINGLE_KEY_OPCODES and not is_put:
        return decode_binary_body(body)
    if type(body) is bytes:
        buf = body
    elif type(body) is memoryview:
        base = body.obj
        buf = base if type(base) is bytes and len(base) == len(body) else bytes(body)
    else:
        buf = bytes(body)
    try:
        marker = buf[0]
        if marker == _ARGS_PACKED:
            size = buf[1]
            offset = 2
            if size == 255:
                size = _unpack_u32(buf, 2)[0]
                offset = 6
            end = offset + size
            raw = buf[offset:end]
            try:
                key = raw.decode("utf-8")
            except UnicodeDecodeError:
                key = raw.decode("utf-8", "surrogatepass")
            if not is_put:
                lo, hi = _unpack_qq(buf, end)
                if end + 16 != len(buf):
                    raise WireDecodeError(
                        f"malformed binary request: {len(buf) - end - 16} trailing bytes"
                    )
                return key, lo, hi
            if _Interval is None:
                _bind_record_types()
            interval, offset = _Interval.unpack_from(buf, end)
            count = buf[offset]
            offset += 1
            tags = []
            for _ in range(count):
                tag, offset = _dec_value(buf, offset)
                tags.append(tag)
            value, offset = _dec_value(buf, offset)
            if offset != len(buf):
                raise WireDecodeError(
                    f"malformed binary request: {len(buf) - offset} trailing bytes"
                )
            return key, value, interval, frozenset(tags)
        if marker == _ARGS_TAGGED:
            if _Interval is None:
                _bind_record_types()
            value, offset = _dec_value(buf, 1)
            if offset != len(buf):
                raise WireDecodeError(
                    f"malformed binary request: {len(buf) - offset} trailing bytes"
                )
            return value
        raise WireDecodeError(f"unknown binary request marker {marker}")
    except WireDecodeError:
        raise
    except Exception as exc:
        raise WireDecodeError(f"malformed binary request: {exc!r}") from exc


# ----------------------------------------------------------------------
# Frame encoders
# ----------------------------------------------------------------------
def encode_mux_frame(request_id: int, opcode: int, payload: object) -> List[Buffer]:
    """One multiplexed frame as a buffer vector (header never concatenated)."""
    flags, buffers = encode_body(payload)
    length = sum(len(b) for b in buffers)
    header = MUX_HEADER.pack(request_id, opcode | flags, length)
    WIRE_COUNTERS.frames_encoded += 1
    return [header] + buffers


def encode_binary_mux_frame(
    request_id: int, opcode: int, payload: object
) -> List[Buffer]:
    """One multiplexed frame with a binary body (:data:`FLAG_BIN` set)."""
    body = encode_binary_body(payload)
    header = MUX_HEADER.pack(request_id, opcode | FLAG_BIN, len(body))
    WIRE_COUNTERS.frames_encoded += 1
    return [header, body]


def encode_binary_request_frame(
    request_id: int, opcode: int, args: object
) -> List[Buffer]:
    """One multiplexed request frame with a binary args body.

    Like :func:`encode_binary_mux_frame` but routed through
    :func:`encode_binary_args`, so the single-key hot ops get their fixed
    request layout.
    """
    body = encode_binary_args(opcode, args)
    header = MUX_HEADER.pack(request_id, opcode | FLAG_BIN, len(body))
    WIRE_COUNTERS.frames_encoded += 1
    return [header, body]


def encode_legacy_frame(payload: object) -> List[Buffer]:
    """One legacy frame as a buffer vector.

    Out-of-band segmentation needs the opcode flag bit, which the legacy
    header lacks, so the legacy body is always one plain pickle stream —
    exactly the original protocol, minus the old ``header + data`` copy.
    """
    data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    WIRE_COUNTERS.frames_encoded += 1
    return [LEGACY_HEADER.pack(len(data)), data]


# ----------------------------------------------------------------------
# Socket I/O helpers
# ----------------------------------------------------------------------
def send_buffers(sock: socket.socket, buffers: Sequence[Buffer]) -> None:
    """Write a vector of buffers to ``sock`` without concatenating them.

    Uses ``sendmsg`` gather I/O, resuming correctly after partial writes;
    falls back to one joined ``sendall`` where ``sendmsg`` is unavailable
    (the copy is counted in :data:`WIRE_COUNTERS`).
    """
    total = sum(len(b) for b in buffers)
    WIRE_COUNTERS.bytes_sent += total
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - exotic platforms
        data = b"".join(buffers)
        WIRE_COUNTERS.bytes_copied += len(data)
        sock.sendall(data)
        return
    views: List[memoryview] = [memoryview(b).cast("B") for b in buffers if len(b)]
    while views:
        sent = sock.sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent:
            views[0] = views[0][sent:]


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; raises ConnectionError on EOF."""
    if count == 0:
        return b""
    first = sock.recv(count)
    if not first:
        raise ConnectionError("connection closed by peer")
    if len(first) == count:
        return first
    chunks = [first]
    remaining = count - len(first)
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed by peer")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Incremental frame parser (the event-loop server's read path)
# ----------------------------------------------------------------------
class FrameAssembler:
    """Reassembles frames from an arbitrarily chunked byte stream.

    Feed it whatever ``recv`` produced; it yields complete frames and keeps
    partial ones buffered.  The framing mode is detected from the first byte
    (``MUX_MAGIC`` or a legacy length header), so one assembler serves
    both client generations on the same listening socket.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: None until the first byte arrives; then "mux" or "legacy".
        self.mode: Optional[str] = None
        #: Body codec the connection asked for: None until the first byte,
        #: then "binary" (opened with MUX_MAGIC_BINARY) or "pickle".
        self.codec: Optional[str] = None

    def feed(self, data: Buffer) -> List[Tuple[Optional[int], int, memoryview]]:
        """Add received bytes; return complete ``(request_id, opcode, body)``.

        Legacy frames have no header fields, so they come back as
        ``(None, 0, body)``.  Raises :class:`ValueError` on an oversized
        frame (the stream cannot be resynchronized).
        """
        self._buffer += data
        if self.mode is None and self._buffer:
            if self._buffer[0] == MUX_MAGIC:
                self.mode = "mux"
                self.codec = "pickle"
                del self._buffer[:1]
            elif self._buffer[0] == MUX_MAGIC_BINARY:
                self.mode = "mux"
                self.codec = "binary"
                del self._buffer[:1]
            else:
                self.mode = "legacy"
                self.codec = "pickle"
        frames: List[Tuple[Optional[int], int, memoryview]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Tuple[Optional[int], int, memoryview]]:
        if self.mode == "mux":
            if len(self._buffer) < MUX_HEADER.size:
                return None
            request_id, opcode, length = MUX_HEADER.unpack_from(self._buffer, 0)
            header_size = MUX_HEADER.size
        elif self.mode == "legacy":
            if len(self._buffer) < LEGACY_HEADER.size:
                return None
            (length,) = LEGACY_HEADER.unpack_from(self._buffer, 0)
            request_id, opcode = None, 0
            header_size = LEGACY_HEADER.size
        else:
            return None
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"oversized frame: {length} bytes")
        if len(self._buffer) < header_size + length:
            return None
        # One copy per frame: the body must outlive the stream buffer
        # (which keeps filling), so it is materialized from a memoryview
        # slice — released before the del, or the bytearray can't resize.
        with memoryview(self._buffer) as view:
            body = bytes(view[header_size : header_size + length])
        del self._buffer[: header_size + length]
        WIRE_COUNTERS.frames_decoded += 1
        return request_id, opcode, memoryview(body)


# ----------------------------------------------------------------------
# Client-side response slot (the pipelined transport's rendezvous)
# ----------------------------------------------------------------------
class ResponseSlot:
    """One in-flight request's rendezvous between caller and reader.

    The reader is either a dedicated thread or, under the read lease,
    whichever caller currently holds the lease.  A slot can be woken
    *without* settling (:meth:`kick` — "the lease is free, come take it");
    waiters must therefore check :attr:`settled` after :meth:`wait` and
    re-arm with :meth:`clear` when they were merely kicked.  ``settled`` is
    written after the value/error and before the event, so a waiter that
    observes the event and then ``settled`` always sees the result.
    """

    __slots__ = ("_event", "value", "error", "settled")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None
        #: True once resolve/fail ran; a set event without it is a kick.
        self.settled = False

    def resolve(self, value: object) -> None:
        self.value = value
        self.settled = True
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.settled = True
        self._event.set()

    def kick(self) -> None:
        """Wake the waiter without settling (read-lease handoff)."""
        self._event.set()

    def clear(self) -> None:
        """Re-arm after a kick (caller must have checked ``settled``)."""
        self._event.clear()

    def wait(self, timeout: Optional[float]) -> bool:
        """True if the slot was woken within ``timeout`` (settled or kicked)."""
        return self._event.wait(timeout)
