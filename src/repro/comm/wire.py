"""The framed wire codec shared by both ends of the cache protocol.

Two framings coexist on the same port (the server tells them apart by the
first byte a connection sends):

* **Legacy framing** — a 4-byte big-endian length followed by the pickled
  payload; exactly one request may be in flight per connection (the client
  writes a frame and blocks reading the response).  This is the original
  protocol of the socket transport and remains available behind
  ``SocketTransport(pipelined=False)`` for parity testing.
* **Multiplexed framing** — a connection opens with the single magic byte
  ``MUX_MAGIC``; every frame then starts with a struct-packed
  ``(request_id, opcode, length)`` header (:data:`MUX_HEADER`, ``!QBI``).
  Any number of requests may be in flight on one connection, and responses
  may arrive **out of order**: the ``request_id`` is how the client matches
  a response to its caller.  ``MUX_MAGIC`` is unambiguous because a legacy
  length header starting with ``0xA7`` would announce a ~2.8 GB frame, far
  beyond :data:`MAX_FRAME_BYTES`.

Opcodes name the cache operation numerically (:data:`OPCODES`), replacing
the pickled operation-name string of the legacy payload; the two response
opcodes ``OP_OK``/``OP_ERR`` carry the result.  The high bit of the opcode
byte (:data:`FLAG_OOB`) marks a body with out-of-band pickle buffers.

Copy discipline
---------------
Nothing in this module concatenates a header onto a payload.  Frames are
written as *vectors of buffers* via :func:`send_buffers` (``socket.sendmsg``
gather I/O, with a join fallback for sockets that lack it), and payloads are
pickled once with protocol 5.  Objects that support pickle-5 out-of-band
serialization (:class:`pickle.PickleBuffer` views over large values) are
sent as separate segments and reassembled on the far side from zero-copy
``memoryview`` slices of the received body.  :class:`WireCounters` tallies
the bytes that *were* copied (the fallback paths) so the wire
microbenchmark can assert the fast paths stay copy-free.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "LEGACY_HEADER",
    "MUX_HEADER",
    "MUX_MAGIC",
    "MAX_FRAME_BYTES",
    "OPCODES",
    "OP_NAMES",
    "OP_OK",
    "OP_ERR",
    "FLAG_OOB",
    "PICKLE_PROTOCOL",
    "WireCounters",
    "WIRE_COUNTERS",
    "encode_body",
    "decode_body",
    "encode_mux_frame",
    "encode_legacy_frame",
    "send_buffers",
    "recv_exactly",
]

#: Legacy frame header: payload length, 4-byte big-endian unsigned.
LEGACY_HEADER = struct.Struct("!I")

#: Multiplexed frame header: (request_id: u64, opcode: u8, length: u32).
MUX_HEADER = struct.Struct("!QBI")

#: First byte of a multiplexed connection.  Never a plausible legacy length
#: prefix (it would imply a frame over MAX_FRAME_BYTES).
MUX_MAGIC = 0xA7

#: Upper bound on a single frame, as a sanity check against corrupt headers.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Wire pickle protocol.  Protocol 5 (Python 3.8+) supports out-of-band
#: buffers; it equals ``pickle.HIGHEST_PROTOCOL`` on every supported Python.
PICKLE_PROTOCOL = 5

#: Request opcodes: every cache operation the transport protocol names.
OPCODES = {
    "lookup": 1,
    "multi_lookup": 2,
    "put": 3,
    "probe": 4,
    "was_ever_stored": 5,
    "evict_stale": 6,
    "clear": 7,
    "stats": 8,
    "reset_stats": 9,
    "extract_entries": 10,
    "install_entries": 11,
    "discard_keys": 12,
    "keys": 13,
    "watermark": 14,
    "invalidate": 15,
    "note_timestamp": 16,
    "ping": 17,
}

#: Response opcodes.
OP_OK = 0x40
OP_ERR = 0x41

#: Opcode flag: the body is segmented (pickle stream + out-of-band buffers).
FLAG_OOB = 0x80

#: Reverse opcode table (diagnostics and the threaded server's dispatch).
OP_NAMES = {code: name for name, code in OPCODES.items()}

#: Sub-header of an out-of-band body: the number of segments, then one
#: length per segment.  Segment 0 is the pickle stream; segments 1.. are the
#: raw out-of-band buffers, in ``buffer_callback`` order.
_SEGMENT_COUNT = struct.Struct("!I")
_SEGMENT_LENGTH = struct.Struct("!I")

Buffer = Union[bytes, bytearray, memoryview]


class WireCounters:
    """Bytes-copied / frames-encoded accounting for the wire microbenchmark.

    The counters are advisory (plain int adds; exact under the GIL for the
    single-threaded microbenchmark that reads them) and cost one attribute
    update per frame on the hot path.
    """

    __slots__ = ("frames_encoded", "frames_decoded", "bytes_sent", "bytes_copied")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        #: Frames encoded (requests and responses, both framings).
        self.frames_encoded = 0
        #: Frames decoded from received bytes.
        self.frames_decoded = 0
        #: Payload + header bytes handed to the socket layer.
        self.bytes_sent = 0
        #: Bytes that crossed an extra userspace copy (sendmsg-fallback
        #: joins and oob-subheader assembly).  Zero on the fast paths.
        self.bytes_copied = 0


#: Process-wide counters; the microbenchmark resets and reads them.
WIRE_COUNTERS = WireCounters()


# ----------------------------------------------------------------------
# Body codec (shared by both framings)
# ----------------------------------------------------------------------
def encode_body(payload: object) -> Tuple[int, List[Buffer]]:
    """Pickle ``payload`` into wire segments.

    Returns ``(flags, buffers)``.  With no out-of-band buffers (the common
    case: cache payloads are ordinary object graphs) ``flags`` is 0 and
    ``buffers`` is the one-element pickle stream.  When the payload carries
    :class:`pickle.PickleBuffer` views, ``flags`` is :data:`FLAG_OOB` and
    ``buffers`` is ``[subheader, pickle_stream, *raw_buffers]`` — the large
    buffers are never copied into the pickle stream.
    """
    oob: List[pickle.PickleBuffer] = []
    data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL, buffer_callback=oob.append)
    if not oob:
        return 0, [data]
    segments: List[Buffer] = [data]
    for buffer in oob:
        segments.append(buffer.raw())
    subheader = bytearray(_SEGMENT_COUNT.pack(len(segments)))
    for segment in segments:
        subheader += _SEGMENT_LENGTH.pack(len(segment))
    WIRE_COUNTERS.bytes_copied += len(subheader)  # only the tiny subheader
    return FLAG_OOB, [bytes(subheader)] + segments


def decode_body(flags: int, body: Buffer) -> object:
    """Decode one frame body produced by :func:`encode_body`.

    The out-of-band path slices ``body`` with zero-copy memoryviews and
    hands the raw buffers back to :func:`pickle.loads` via ``buffers=``.
    """
    if not flags & FLAG_OOB:
        return pickle.loads(body)
    view = memoryview(body)
    (count,) = _SEGMENT_COUNT.unpack_from(view, 0)
    offset = _SEGMENT_COUNT.size
    lengths = []
    for _ in range(count):
        (length,) = _SEGMENT_LENGTH.unpack_from(view, offset)
        offset += _SEGMENT_LENGTH.size
        lengths.append(length)
    segments = []
    for length in lengths:
        segments.append(view[offset : offset + length])
        offset += length
    return pickle.loads(segments[0], buffers=segments[1:])


# ----------------------------------------------------------------------
# Frame encoders
# ----------------------------------------------------------------------
def encode_mux_frame(request_id: int, opcode: int, payload: object) -> List[Buffer]:
    """One multiplexed frame as a buffer vector (header never concatenated)."""
    flags, buffers = encode_body(payload)
    length = sum(len(b) for b in buffers)
    header = MUX_HEADER.pack(request_id, opcode | flags, length)
    WIRE_COUNTERS.frames_encoded += 1
    return [header] + buffers


def encode_legacy_frame(payload: object) -> List[Buffer]:
    """One legacy frame as a buffer vector.

    Out-of-band segmentation needs the opcode flag bit, which the legacy
    header lacks, so the legacy body is always one plain pickle stream —
    exactly the original protocol, minus the old ``header + data`` copy.
    """
    data = pickle.dumps(payload, protocol=PICKLE_PROTOCOL)
    WIRE_COUNTERS.frames_encoded += 1
    return [LEGACY_HEADER.pack(len(data)), data]


# ----------------------------------------------------------------------
# Socket I/O helpers
# ----------------------------------------------------------------------
def send_buffers(sock: socket.socket, buffers: Sequence[Buffer]) -> None:
    """Write a vector of buffers to ``sock`` without concatenating them.

    Uses ``sendmsg`` gather I/O, resuming correctly after partial writes;
    falls back to one joined ``sendall`` where ``sendmsg`` is unavailable
    (the copy is counted in :data:`WIRE_COUNTERS`).
    """
    total = sum(len(b) for b in buffers)
    WIRE_COUNTERS.bytes_sent += total
    if not hasattr(sock, "sendmsg"):  # pragma: no cover - exotic platforms
        data = b"".join(buffers)
        WIRE_COUNTERS.bytes_copied += len(data)
        sock.sendall(data)
        return
    views: List[memoryview] = [memoryview(b).cast("B") for b in buffers if len(b)]
    while views:
        sent = sock.sendmsg(views)
        while views and sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        if sent:
            views[0] = views[0][sent:]


def recv_exactly(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes; raises ConnectionError on EOF."""
    if count == 0:
        return b""
    first = sock.recv(count)
    if not first:
        raise ConnectionError("connection closed by peer")
    if len(first) == count:
        return first
    chunks = [first]
    remaining = count - len(first)
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError("connection closed by peer")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Incremental frame parser (the event-loop server's read path)
# ----------------------------------------------------------------------
class FrameAssembler:
    """Reassembles frames from an arbitrarily chunked byte stream.

    Feed it whatever ``recv`` produced; it yields complete frames and keeps
    partial ones buffered.  The framing mode is detected from the first byte
    (``MUX_MAGIC`` or a legacy length header), so one assembler serves
    both client generations on the same listening socket.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        #: None until the first byte arrives; then "mux" or "legacy".
        self.mode: Optional[str] = None

    def feed(self, data: Buffer) -> List[Tuple[Optional[int], int, memoryview]]:
        """Add received bytes; return complete ``(request_id, opcode, body)``.

        Legacy frames have no header fields, so they come back as
        ``(None, 0, body)``.  Raises :class:`ValueError` on an oversized
        frame (the stream cannot be resynchronized).
        """
        self._buffer += data
        if self.mode is None and self._buffer:
            if self._buffer[0] == MUX_MAGIC:
                self.mode = "mux"
                del self._buffer[:1]
            else:
                self.mode = "legacy"
        frames: List[Tuple[Optional[int], int, memoryview]] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[Tuple[Optional[int], int, memoryview]]:
        if self.mode == "mux":
            if len(self._buffer) < MUX_HEADER.size:
                return None
            request_id, opcode, length = MUX_HEADER.unpack_from(self._buffer, 0)
            header_size = MUX_HEADER.size
        elif self.mode == "legacy":
            if len(self._buffer) < LEGACY_HEADER.size:
                return None
            (length,) = LEGACY_HEADER.unpack_from(self._buffer, 0)
            request_id, opcode = None, 0
            header_size = LEGACY_HEADER.size
        else:
            return None
        if length > MAX_FRAME_BYTES:
            raise ValueError(f"oversized frame: {length} bytes")
        if len(self._buffer) < header_size + length:
            return None
        # One copy per frame: the body must outlive the stream buffer
        # (which keeps filling), so it is materialized from a memoryview
        # slice — released before the del, or the bytearray can't resize.
        with memoryview(self._buffer) as view:
            body = bytes(view[header_size : header_size + length])
        del self._buffer[: header_size + length]
        WIRE_COUNTERS.frames_decoded += 1
        return request_id, opcode, memoryview(body)


# ----------------------------------------------------------------------
# Client-side response slot (the pipelined transport's rendezvous)
# ----------------------------------------------------------------------
class ResponseSlot:
    """One in-flight request's rendezvous between caller and reader thread."""

    __slots__ = ("_event", "value", "error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None

    def resolve(self, value: object) -> None:
        self.value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self._event.set()

    def wait(self, timeout: Optional[float]) -> bool:
        """True if the slot settled within ``timeout``."""
        return self._event.wait(timeout)
