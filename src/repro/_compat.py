"""Small version-compatibility shims.

``DATACLASS_SLOTS`` lets the hot-path value types (intervals, cache entry
and lookup records) opt into ``__slots__`` layout where the interpreter
supports it: ``@dataclass(slots=True)`` needs Python 3.10, and the oldest
interpreter in CI is 3.9.  Slotted instances skip the per-instance
``__dict__`` (less memory, faster attribute access), which the wire
microbenchmark measures on the frame codec path.
"""

from __future__ import annotations

import sys

__all__ = ["DATACLASS_SLOTS"]

DATACLASS_SLOTS = {"slots": True} if sys.version_info >= (3, 10) else {}
