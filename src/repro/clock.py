"""Clocks used throughout the TxCache reproduction.

The paper's system uses real wall-clock time for staleness limits (e.g. a
read-only transaction may request a snapshot no older than 30 seconds) while
ordering all data by logical commit timestamps.  The reproduction mirrors
this split: logical timestamps come from the database's commit counter, and
wall-clock time comes from a :class:`Clock`.

Two implementations are provided:

* :class:`SystemClock` — reads the real time.  Used in interactive examples.
* :class:`ManualClock` — a settable clock advanced explicitly.  Used by the
  tests and by the benchmark simulator so that experiments are deterministic
  and can model hours of simulated traffic in milliseconds of real time.
"""

from __future__ import annotations

import threading

import time
from abc import ABC, abstractmethod

__all__ = ["Clock", "SystemClock", "ManualClock"]


class Clock(ABC):
    """Abstract wall-clock time source (seconds as a float)."""

    @abstractmethod
    def now(self) -> float:
        """Return the current wall-clock time in seconds."""


class SystemClock(Clock):
    """Clock backed by the operating system's real time."""

    def now(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A clock that only moves when told to.

    Tests and the benchmark simulator advance it explicitly, which makes
    staleness behaviour (pin expiry, stale cache entries) fully deterministic.
    Thread-safe: several harness threads may advance one shared clock, and a
    lock keeps each advance atomic (an unlocked ``+=`` could both lose
    advances and let the observed time regress between threads).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._lock = threading.Lock()
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move a ManualClock backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, timestamp: float) -> float:
        """Jump the clock to an absolute time (must not move backwards)."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError("cannot move a ManualClock backwards")
            self._now = float(timestamp)
            return self._now
