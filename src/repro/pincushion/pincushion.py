"""The pincushion daemon (paper section 5.4).

TxCache needs to know which snapshots are pinned on the database and which of
them fall within a read-only transaction's staleness limit, and it must
eventually unpin snapshots that are no longer needed.  Rather than burdening
the database, the paper places this bookkeeping in a lightweight daemon, the
*pincushion*.

The pincushion keeps a table of pinned snapshots: the snapshot id (which is a
commit timestamp), the wall-clock time it corresponds to, and the number of
running transactions that might be using it.  Read-only transactions ask it
for all sufficiently fresh pinned snapshots at BEGIN and release them at
COMMIT/ABORT; a periodic sweep unpins snapshots that are old and unused.

Thread safety
-------------
:class:`Pincushion` is thread-safe: one lock serializes every operation, so
many application-server threads may BEGIN/COMMIT concurrently.  The paper's
pincushion is a single daemon serving all application servers, which makes
it exactly this kind of shared, contended structure; the lock keeps the
in-use reference counts exact (a lost update there would either expire a
snapshot still in use or pin one forever).  The expiry sweep invokes the
``unpin_callback`` while holding the lock; the database's pin bookkeeping
takes its own lock, and no database path calls back into the pincushion, so
the lock order pincushion -> database is acyclic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.clock import Clock, SystemClock

__all__ = ["PinnedSnapshot", "Pincushion", "PincushionStats"]


@dataclass
class PinnedSnapshot:
    """One row of the pincushion's table."""

    snapshot_id: int
    wallclock: float
    in_use: int = 0


@dataclass
class PincushionStats:
    """Counters describing pincushion traffic."""

    fresh_requests: int = 0
    registrations: int = 0
    releases: int = 0
    expirations: int = 0


class Pincushion:
    """In-process reproduction of the pincushion daemon.

    ``unpin_callback`` is invoked with a snapshot id when the pincushion
    decides to expire it; the TxCache deployment wires this to
    ``Database.unpin`` so the database can eventually vacuum old versions.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        unpin_callback: Optional[Callable[[int], None]] = None,
        expiry_seconds: float = 60.0,
    ) -> None:
        self.clock = clock or SystemClock()
        self._unpin_callback = unpin_callback
        self.expiry_seconds = expiry_seconds
        #: Serializes every operation (see "Thread safety" above).
        self._lock = threading.Lock()
        self._snapshots: Dict[int, PinnedSnapshot] = {}
        self.stats = PincushionStats()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def fresh_snapshots(self, staleness: float, mark_in_use: bool = True) -> List[PinnedSnapshot]:
        """Return every pinned snapshot within ``staleness`` seconds of now.

        When ``mark_in_use`` is True (the normal path at transaction BEGIN)
        each returned snapshot's in-use count is incremented; the caller must
        balance it with :meth:`release` when the transaction finishes.
        """
        with self._lock:
            self.stats.fresh_requests += 1
            cutoff = self.clock.now() - staleness
            fresh = [
                snapshot
                for snapshot in self._snapshots.values()
                if snapshot.wallclock >= cutoff
            ]
            fresh.sort(key=lambda snapshot: snapshot.snapshot_id)
            if mark_in_use:
                for snapshot in fresh:
                    snapshot.in_use += 1
            return fresh

    def snapshot(self, snapshot_id: int) -> Optional[PinnedSnapshot]:
        """Return the pinned snapshot with the given id, if registered."""
        with self._lock:
            return self._snapshots.get(snapshot_id)

    @property
    def pinned_ids(self) -> List[int]:
        """Ids of every registered snapshot, ascending."""
        with self._lock:
            return sorted(self._snapshots)

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    # ------------------------------------------------------------------
    # Registration and release
    # ------------------------------------------------------------------
    def register(self, snapshot_id: int, wallclock: float, in_use: bool = True) -> PinnedSnapshot:
        """Record a snapshot that a library instance just pinned.

        If the snapshot is already registered its in-use count is simply
        bumped (two transactions may race to pin the same latest snapshot).
        """
        with self._lock:
            self.stats.registrations += 1
            existing = self._snapshots.get(snapshot_id)
            if existing is not None:
                if in_use:
                    existing.in_use += 1
                return existing
            snapshot = PinnedSnapshot(
                snapshot_id=snapshot_id, wallclock=wallclock, in_use=1 if in_use else 0
            )
            self._snapshots[snapshot_id] = snapshot
            return snapshot

    def release(self, snapshot_ids: List[int]) -> None:
        """Drop the in-use marks a finishing transaction held."""
        with self._lock:
            self.stats.releases += 1
            for snapshot_id in snapshot_ids:
                snapshot = self._snapshots.get(snapshot_id)
                if snapshot is not None and snapshot.in_use > 0:
                    snapshot.in_use -= 1

    # ------------------------------------------------------------------
    # Expiry sweep
    # ------------------------------------------------------------------
    def expire_old_snapshots(self, older_than: Optional[float] = None) -> List[int]:
        """Unpin unused snapshots older than the threshold.

        Returns the ids that were expired.  A snapshot still marked in-use is
        never expired regardless of age.
        """
        with self._lock:
            threshold = self.expiry_seconds if older_than is None else older_than
            cutoff = self.clock.now() - threshold
            expired: List[int] = []
            for snapshot_id, snapshot in list(self._snapshots.items()):
                if snapshot.in_use == 0 and snapshot.wallclock < cutoff:
                    del self._snapshots[snapshot_id]
                    expired.append(snapshot_id)
                    self.stats.expirations += 1
                    if self._unpin_callback is not None:
                        self._unpin_callback(snapshot_id)
            return expired
