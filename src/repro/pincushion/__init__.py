"""The pincushion: registry of pinned database snapshots."""

from repro.pincushion.pincushion import PinnedSnapshot, Pincushion

__all__ = ["Pincushion", "PinnedSnapshot"]
