"""Convenience wiring of a complete TxCache deployment.

A TxCache deployment (paper Figure 1) consists of a database, a set of cache
nodes, the pincushion, and one TxCache library instance per application
server, all sharing one invalidation stream.  :class:`TxCacheDeployment`
builds and wires these pieces so examples, tests, and the benchmark harness
do not repeat the plumbing.

The ``transport`` option selects how the cache nodes are deployed:
``TxCacheDeployment(transport="inprocess")`` (the default) calls cache
servers directly, while ``transport="socket"`` runs every node as a real
TCP server (:class:`repro.cache.netserver.CacheServerProcess`) reached over
a framed wire protocol — the paper's actual topology.  Socket deployments
hold OS resources; call :meth:`TxCacheDeployment.shutdown` (or use the
deployment as a context manager) when done.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cache.cluster import CacheCluster
from repro.cache.gossip import GossipRunner
from repro.cache.maintenance import MaintenanceBudget, MaintenancePlane
from repro.cache.membership import ClusterMembership
from repro.cache.server import CacheServer
from repro.cache.supervisor import NodeSupervisor
from repro.clock import Clock, ManualClock
from repro.comm.multicast import InvalidationBus
from repro.comm.transport import RetryPolicy
from repro.core.api import ConsistencyMode, TxCacheClient
from repro.db.database import Database
from repro.pincushion.pincushion import Pincushion

__all__ = ["TxCacheDeployment", "HousekeepingError"]


class HousekeepingError(Exception):
    """One or more housekeeping stages failed (the rest still ran).

    ``failures`` maps stage name to the exception it raised.  Raised at the
    end of :meth:`TxCacheDeployment.housekeeping` so one broken chore (say a
    gossip round against a dying node) cannot starve the others — the
    supervisor pump and the maintenance plane must keep running precisely
    when things are failing.
    """

    def __init__(self, failures: dict) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{stage}: {exc!r}" for stage, exc in self.failures.items()
        )
        super().__init__(f"housekeeping stage(s) failed: {detail}")


@dataclass
class TxCacheDeployment:
    """One database, one cache cluster, one pincushion, many clients."""

    clock: Clock = field(default_factory=ManualClock)
    cache_nodes: int = 2
    cache_capacity_bytes_per_node: int = 64 * 1024 * 1024
    #: "inprocess" (direct calls), "socket" (networked cache servers behind
    #: pooled one-in-flight connections), "socket-pipelined" (the
    #: multiplexed wire protocol to event-loop servers — the fast wire
    #: path), or "socket-process" (each node in its own OS process behind
    #: the pipelined wire stack, so nodes scale with cores — see
    #: repro.cache.procnode).
    transport: str = "inprocess"
    mode: ConsistencyMode = ConsistencyMode.CONSISTENT
    default_staleness: float = 30.0
    new_pin_threshold: float = 5.0
    pincushion_expiry_seconds: float = 60.0
    track_validity: bool = True
    #: Consecutive transport failures before a cache node is evicted from
    #: the ring (failure-aware routing degrades to misses until then).
    failure_threshold: int = 3
    #: Pooled connections per cache node under the socket transport: the
    #: number of RPCs one application server keeps in flight to each node.
    #: Size it to the number of worker threads sharing the deployment (more
    #: buys nothing; fewer makes threads queue for a connection).
    socket_pool_size: int = 4
    #: Connect/read timeout for pooled connections; a node that stops
    #: answering surfaces as unreachable (and degrades) within this bound
    #: instead of hanging a worker thread forever.
    rpc_timeout_seconds: float = 30.0
    #: Modelled LAN round-trip time served by each networked cache node
    #: (0 = loopback only).  See repro.cache.netserver.CacheServerProcess.
    simulated_rpc_latency_seconds: float = 0.0
    #: Override the client framing (None = derived from ``transport``):
    #: True multiplexes many in-flight RPCs per socket, False keeps the
    #: pooled one-in-flight connections.  See repro.cache.netserver.
    socket_pipelined: Optional[bool] = None
    #: Override the cache-server engine ("threaded" | "eventloop"; None =
    #: derived from ``transport``).
    cache_server_style: Optional[str] = None
    #: Keys per chunk when live-migrating entries on a membership change.
    migration_chunk_size: int = 128
    #: Copies of each key across the cache tier (ring successor lists).
    #: With R > 1 reads fail over to replicas and a node crash loses no
    #: cached state; 1 reproduces the paper's unreplicated deployment.
    replication_factor: int = 1
    #: Re-replicate under-replicated ranges automatically after a crash
    #: eviction (anti-entropy repair; only meaningful with replication).
    auto_repair: bool = True
    #: Body codec of the hot ops on the pipelined wire ("binary" |
    #: "pickle"; None = "binary" unless REPRO_WIRE_CODEC says otherwise).
    #: Negotiated per connection, so mixed deployments fail fast instead
    #: of mis-decoding.  See repro.comm.wire.
    wire_codec: Optional[str] = None
    #: Let the calling thread read its own response off a mux connection
    #: when the read lease is free (drops the reader-thread rendezvous at
    #: low concurrency); False restores the dedicated reader thread.
    mux_read_lease: bool = True
    #: Batch all drained responses per connection into one sendmsg gather
    #: on the event-loop engine; False writes one sendmsg per response.
    write_coalescing: bool = True
    #: Buffer the invalidation stream per node and ship each node's batch
    #: as one ``invalidate_tags`` RPC per :meth:`housekeeping` round,
    #: instead of one synchronous RPC per commit.  Consistency-safe (the
    #: watermark bounds every lookup) but watermark freshness then depends
    #: on the housekeeping cadence; off by default.
    invalidation_batching: bool = False
    #: Pin each "socket-process" cache node to its own CPU core (opt-in;
    #: ignored by the in-interpreter transports).
    cpu_pinning: bool = False
    #: Run the gossip membership plane: a per-node SWIM-style agent plus an
    #: app-server observer relay digests each :meth:`housekeeping` round, so
    #: the node set converges without a coordinator and confirmed deaths
    #: drive ring eviction.  See repro.cache.gossip.
    gossip: bool = False
    #: Seconds without heartbeat progress before a peer is suspected.
    gossip_suspect_seconds: float = 2.0
    #: Seconds a suspect stays unrefuted before it is confirmed dead.
    gossip_confirm_seconds: float = 4.0
    #: Peers each agent exchanges digests with per gossip round.
    gossip_fanout: int = 1
    #: Seed of the runner's peer-selection RNG (rounds are deterministic).
    gossip_seed: int = 0
    #: Run migration/repair sweeps as resumable background jobs pumped from
    #: :meth:`housekeeping` under an op/byte budget, instead of synchronous
    #: epoch-boundary sweeps.  See repro.cache.maintenance.
    background_maintenance: bool = False
    #: Budget: maintenance RPCs allowed per interval.
    maintenance_ops_per_interval: int = 64
    #: Budget: maintenance payload bytes allowed per interval.
    maintenance_bytes_per_interval: int = 1 << 20
    #: Budget refill interval, on the deployment clock.
    maintenance_interval_seconds: float = 1.0
    #: Retry/backoff/deadline policy of the cache wire client (idempotent
    #: reads only; None = the RetryPolicy defaults).  Disable retries with
    #: ``RetryPolicy(max_attempts=1)``.  See repro.comm.transport.
    retry_policy: Optional[RetryPolicy] = None
    #: Supervise cache nodes: detect crashed children, respawn them with
    #: backoff, and re-warm via the maintenance plane.  None = on for the
    #: "socket-process" transport (real child processes that can die), off
    #: otherwise; the supervisor still works on any transport when forced
    #: on (an evicted in-process node is "dead" and gets respawned).
    supervision: Optional[bool] = None
    #: First respawn delay after a death; doubles each crash-loop rung.
    supervisor_backoff_base_seconds: float = 0.1
    #: Ceiling of the respawn backoff ladder.
    supervisor_backoff_max_seconds: float = 5.0
    #: Respawns allowed inside the window before the circuit breaker trips
    #: and the node is given up on (permanent eviction).
    supervisor_max_restarts: int = 5
    #: Width of the circuit-breaker restart-counting window.
    supervisor_restart_window_seconds: float = 60.0

    def __post_init__(self) -> None:
        self.invalidation_bus = InvalidationBus()
        self.database = Database(
            clock=self.clock,
            invalidation_bus=self.invalidation_bus,
            track_validity=self.track_validity,
        )
        self.cache = CacheCluster(
            node_count=self.cache_nodes,
            capacity_bytes_per_node=self.cache_capacity_bytes_per_node,
            clock=self.clock,
            invalidation_bus=self.invalidation_bus,
            transport=self.transport,
            failure_threshold=self.failure_threshold,
            replication_factor=self.replication_factor,
            socket_pool_size=self.socket_pool_size,
            rpc_timeout_seconds=self.rpc_timeout_seconds,
            simulated_rpc_latency_seconds=self.simulated_rpc_latency_seconds,
            socket_pipelined=self.socket_pipelined,
            server_style=self.cache_server_style,
            wire_codec=self.wire_codec,
            mux_read_lease=self.mux_read_lease,
            write_coalescing=self.write_coalescing,
            invalidation_batching=self.invalidation_batching,
            cpu_pinning=self.cpu_pinning,
            retry_policy=self.retry_policy,
        )
        self.membership = ClusterMembership(
            self.cache, chunk_size=self.migration_chunk_size, auto_repair=self.auto_repair
        )
        if self.background_maintenance:
            budget = MaintenanceBudget(
                clock=self.clock,
                ops_per_interval=self.maintenance_ops_per_interval,
                bytes_per_interval=self.maintenance_bytes_per_interval,
                interval_seconds=self.maintenance_interval_seconds,
            )
            self.membership.plane = MaintenancePlane(budget=budget)
        self.gossip_runner: Optional[GossipRunner] = None
        if self.gossip:
            self.gossip_runner = GossipRunner(
                self.cache,
                self.membership,
                clock=self.clock,
                suspect_timeout=self.gossip_suspect_seconds,
                confirm_timeout=self.gossip_confirm_seconds,
                fanout=self.gossip_fanout,
                seed=self.gossip_seed,
            )
        self.supervisor: Optional[NodeSupervisor] = None
        supervise = (
            self.transport == "socket-process"
            if self.supervision is None
            else self.supervision
        )
        if supervise:
            self.supervisor = NodeSupervisor(
                self.cache,
                self.membership,
                gossip_runner=self.gossip_runner,
                clock=self.clock,
                backoff_base_seconds=self.supervisor_backoff_base_seconds,
                backoff_max_seconds=self.supervisor_backoff_max_seconds,
                max_restarts=self.supervisor_max_restarts,
                restart_window_seconds=self.supervisor_restart_window_seconds,
            )
            for name in self.cache.transports:
                self.supervisor.register(
                    name, capacity_bytes=self.cache_capacity_bytes_per_node
                )
        self.pincushion = Pincushion(
            clock=self.clock,
            unpin_callback=self.database.unpin,
            expiry_seconds=self.pincushion_expiry_seconds,
        )
        self.clients: List[TxCacheClient] = []

    # ------------------------------------------------------------------
    # Clients
    # ------------------------------------------------------------------
    def client(
        self,
        mode: Optional[ConsistencyMode] = None,
        default_staleness: Optional[float] = None,
    ) -> TxCacheClient:
        """Create a new TxCache library instance attached to this deployment."""
        client = TxCacheClient(
            database=self.database,
            cache=self.cache,
            pincushion=self.pincushion,
            clock=self.clock,
            mode=mode or self.mode,
            default_staleness=(
                self.default_staleness if default_staleness is None else default_staleness
            ),
            new_pin_threshold=self.new_pin_threshold,
        )
        self.clients.append(client)
        return client

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def housekeeping(self, max_staleness: Optional[float] = None) -> None:
        """Run the periodic background chores of a deployment.

        * expire old, unused pinned snapshots (pincushion sweep, which in
          turn unpins them on the database);
        * vacuum tuple versions nothing can see any more;
        * eagerly evict cache entries too stale to satisfy any transaction
          within ``max_staleness`` seconds;
        * with ``invalidation_batching``, flush each node's buffered
          invalidation batch (one ``invalidate_tags`` RPC per node);
        * with ``gossip``, run one gossip round (tick every agent, exchange
          digests, confirm deaths);
        * with ``supervision``, run one supervisor pass (detect dead nodes,
          respawn any whose backoff has elapsed);
        * with ``background_maintenance``, pump queued maintenance chunks
          under the plane's budget.

        Stages are isolated: a failing stage is recorded and the remaining
        stages still run — the cluster must keep healing exactly when parts
        of it are failing.  If anything failed, a :class:`HousekeepingError`
        summarising every failure is raised at the end.
        """
        staleness = self.default_staleness if max_staleness is None else max_staleness

        def evict_stale() -> None:
            horizon_wallclock = self.clock.now() - staleness
            horizon_ts = self.database.newest_timestamp_at_or_before(horizon_wallclock)
            if horizon_ts > 0:
                self.cache.evict_stale(horizon_ts)

        stages = [
            ("flush_invalidations", self.cache.flush_invalidations),
            ("expire_old_snapshots", self.pincushion.expire_old_snapshots),
            ("vacuum", self.database.vacuum),
            ("evict_stale", evict_stale),
        ]
        if self.gossip_runner is not None:
            stages.append(("gossip_round", self.gossip_runner.round))
        if self.supervisor is not None:
            # Supervisor before the plane: a rejoin queued this pass gets
            # its re-warm chunks pumped in the same housekeeping round.
            stages.append(("supervisor_pump", self.supervisor.pump))
        if self.membership.plane is not None:
            stages.append(("maintenance_pump", self.membership.plane.pump))

        failures: dict = {}
        for label, stage in stages:
            try:
                stage()
            except Exception as exc:  # noqa: BLE001 - summarised below
                failures[label] = exc
        if failures:
            raise HousekeepingError(failures)

    def advance(self, seconds: float) -> None:
        """Advance a manual clock (no-op guard for system clocks)."""
        if isinstance(self.clock, ManualClock):
            self.clock.advance(seconds)

    # ------------------------------------------------------------------
    # Elasticity
    # ------------------------------------------------------------------
    def add_cache_node(
        self,
        name: Optional[str] = None,
        capacity_bytes: Optional[int] = None,
        weight: float = 1.0,
        migrate: bool = True,
    ) -> CacheServer:
        """Grow the cache tier by one node (warm join via live migration).

        ``name`` defaults to the next free ``cacheN``; ``capacity_bytes``
        defaults to the deployment's per-node capacity.  With
        ``migrate=False`` the join is cold: remapped keys start over.
        """
        if name is None:
            index = self.cache.node_count
            while f"cache{index}" in self.cache.transports:
                index += 1
            name = f"cache{index}"
        server = self.membership.join(
            name,
            capacity_bytes=capacity_bytes or self.cache_capacity_bytes_per_node,
            weight=weight,
            migrate=migrate,
        )
        if self.gossip_runner is not None:
            self.gossip_runner.register(name)
        if self.supervisor is not None:
            self.supervisor.register(
                name,
                capacity_bytes=capacity_bytes or self.cache_capacity_bytes_per_node,
                weight=weight,
            )
        return server

    def remove_cache_node(self, name: str, migrate: bool = True) -> None:
        """Shrink the cache tier by one node (drained via live migration)."""
        if self.supervisor is not None:
            # Planned removal: supervision must not resurrect the node.
            self.supervisor.forget(name)
        if self.gossip_runner is not None:
            self.gossip_runner.leave(name)
        self.membership.leave(name, migrate=migrate)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Tear the deployment down (closes networked cache nodes).

        Idempotent: every pooled client connection is closed and every
        socket server stopped on the first call, and later calls are no-ops.
        Safe to call while client threads are still issuing transactions —
        their in-flight cache RPCs either complete or degrade through the
        failure-aware routing path (a closed cache is indistinguishable from
        a dead one, and a dead cache must never crash the application).
        """
        self.cache.close()

    def __enter__(self) -> "TxCacheDeployment":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()
