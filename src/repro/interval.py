"""Validity intervals and interval sets.

TxCache tags every cached value and every database query result with a
*validity interval*: the range of (logical commit) timestamps over which the
value is the correct answer.  The lower bound is the commit timestamp of the
transaction that made the value current; the upper bound is the commit
timestamp of the first later transaction that changed it, or unbounded if the
value is still current (paper section 4.1).

Timestamps in this implementation are integer logical commit timestamps
assigned by the database (:class:`repro.db.database.Database`).  An interval
``Interval(lo, hi)`` covers the timestamps ``lo <= t < hi``; ``hi is None``
means the interval is unbounded on the right (the value is still valid).

:class:`IntervalSet` is a union of disjoint intervals.  It is used for the
*invalidity mask* of a query (paper section 5.2): the union of the validity
intervals of all tuples that matched the query predicate but failed the
snapshot visibility check (phantoms).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Tuple

from repro._compat import DATACLASS_SLOTS

__all__ = ["Interval", "IntervalSet", "UNBOUNDED"]

#: Sentinel meaning "no upper bound" (the value is still valid).
UNBOUNDED: Optional[int] = None

# Binary wire layout of one interval: a bounded-flag byte, the i64 lower
# bound, and (bounded intervals only) the i64 upper bound.
_BOUNDED_LO = struct.Struct("<Bq")
_BOUNDED_LO_HI = struct.Struct("<Bqq")
_LO_HI = struct.Struct("<qq")
_COUNT = struct.Struct("<I")


@dataclass(frozen=True, order=False, **DATACLASS_SLOTS)
class Interval:
    """A half-open validity interval ``[lo, hi)`` of logical timestamps.

    ``hi is None`` denotes an unbounded interval (still valid).  Intervals
    are immutable; all operations return new intervals.  Slotted on
    interpreters that support it: every cached value and every wire frame
    carries intervals, so skipping the per-instance ``__dict__`` roughly
    halves the record footprint and buys a few percent on construction and
    attribute reads (measured in ``benchmarks/test_bench_transport.py``).
    """

    lo: int
    hi: Optional[int] = UNBOUNDED

    def __post_init__(self) -> None:
        if self.hi is not None and self.hi < self.lo:
            raise ValueError(f"invalid interval: hi={self.hi} < lo={self.lo}")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def unbounded(self) -> bool:
        """True if the interval has no upper bound (still valid)."""
        return self.hi is None

    @property
    def empty(self) -> bool:
        """True if the interval contains no timestamps."""
        return self.hi is not None and self.hi <= self.lo

    def contains(self, timestamp: int) -> bool:
        """True if ``timestamp`` lies within the interval."""
        if timestamp < self.lo:
            return False
        return self.hi is None or timestamp < self.hi

    def intersects(self, other: "Interval") -> bool:
        """True if the two intervals share at least one timestamp."""
        return not self.intersect(other).empty

    def contains_interval(self, other: "Interval") -> bool:
        """True if ``other`` lies entirely within this interval."""
        if other.empty:
            return True
        if other.lo < self.lo:
            return False
        if self.hi is None:
            return True
        if other.hi is None:
            return False
        return other.hi <= self.hi

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        """Return the intersection of the two intervals (possibly empty)."""
        lo = max(self.lo, other.lo)
        if self.hi is None:
            hi = other.hi
        elif other.hi is None:
            hi = self.hi
        else:
            hi = min(self.hi, other.hi)
        if hi is not None and hi < lo:
            hi = lo  # normalized empty interval
        return Interval(lo, hi)

    def union_hull(self, other: "Interval") -> "Interval":
        """Return the smallest interval covering both (not a true union)."""
        lo = min(self.lo, other.lo)
        hi = None if (self.hi is None or other.hi is None) else max(self.hi, other.hi)
        return Interval(lo, hi)

    def truncate(self, timestamp: int) -> "Interval":
        """Return this interval with its upper bound capped at ``timestamp``.

        Used when an invalidation arrives: a still-valid cache entry becomes
        invalid as of the invalidating transaction's commit timestamp.
        """
        if self.hi is not None and self.hi <= timestamp:
            return self
        hi = max(self.lo, timestamp)
        return Interval(self.lo, hi)

    def clamp_upper(self, timestamp: Optional[int]) -> "Interval":
        """Return this interval intersected with ``(-inf, timestamp)``.

        Unlike :meth:`truncate` this never widens the interval and treats
        ``None`` as "no clamp".
        """
        if timestamp is None:
            return self
        return self.intersect(Interval(self.lo, timestamp)) if timestamp >= self.lo else Interval(self.lo, self.lo)

    def subtract(self, other: "Interval") -> List["Interval"]:
        """Return this interval minus ``other`` as a list of 0-2 intervals."""
        if other.empty or not self.intersects(other):
            return [] if self.empty else [self]
        pieces: List[Interval] = []
        # Left piece: [self.lo, other.lo)
        if self.lo < other.lo:
            pieces.append(Interval(self.lo, other.lo))
        # Right piece: [other.hi, self.hi)
        if other.hi is not None:
            if self.hi is None or other.hi < self.hi:
                pieces.append(Interval(other.hi, self.hi))
        return pieces

    # ------------------------------------------------------------------
    # Binary wire codec (see repro.comm.wire)
    # ------------------------------------------------------------------
    def pack_into(self, out: bytearray) -> None:
        """Append this interval's fixed little-endian encoding to ``out``."""
        if self.hi is None:
            out += _BOUNDED_LO.pack(0, self.lo)
        else:
            out += _BOUNDED_LO_HI.pack(1, self.lo, self.hi)

    @classmethod
    def unpack_from(cls, buf: bytes, offset: int) -> Tuple["Interval", int]:
        """Decode one interval; returns ``(interval, next_offset)``.

        Construction bypasses ``__init__`` for speed, so the ``hi < lo``
        invariant is re-checked here — a malformed frame must not produce an
        interval the validity algebra would misinterpret.
        """
        if buf[offset]:
            lo, hi = _LO_HI.unpack_from(buf, offset + 1)
            if hi < lo:
                raise ValueError(f"invalid interval: hi={hi} < lo={lo}")
            offset += _BOUNDED_LO_HI.size
        else:
            lo = _BOUNDED_LO.unpack_from(buf, offset)[1]
            hi = None
            offset += _BOUNDED_LO.size
        interval = object.__new__(cls)
        object.__setattr__(interval, "lo", lo)
        object.__setattr__(interval, "hi", hi)
        return interval, offset

    # ------------------------------------------------------------------
    # Dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hi = "inf" if self.hi is None else str(self.hi)
        return f"[{self.lo}, {hi})"


class IntervalSet:
    """A union of disjoint, sorted intervals.

    Used primarily for the invalidity mask during query execution and for
    bookkeeping of the timestamps covered by the versions of a cache key.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = []
        for interval in intervals:
            self.add(interval)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, interval: Interval) -> None:
        """Add ``interval``, merging it with any overlapping members."""
        if interval.empty:
            return
        merged = interval
        kept: List[Interval] = []
        for existing in self._intervals:
            if _touches(existing, merged):
                merged = existing.union_hull(merged)
            else:
                kept.append(existing)
        kept.append(merged)
        kept.sort(key=lambda iv: iv.lo)
        self._intervals = kept

    def update(self, intervals: Iterable[Interval]) -> None:
        """Add every interval in ``intervals``."""
        for interval in intervals:
            self.add(interval)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self._intervals)

    def __bool__(self) -> bool:
        return bool(self._intervals)

    @property
    def intervals(self) -> List[Interval]:
        """The disjoint member intervals, sorted by lower bound."""
        return list(self._intervals)

    def contains(self, timestamp: int) -> bool:
        """True if any member interval contains ``timestamp``."""
        return any(iv.contains(timestamp) for iv in self._intervals)

    def intersects(self, interval: Interval) -> bool:
        """True if any member interval intersects ``interval``."""
        return any(iv.intersects(interval) for iv in self._intervals)

    def subtract_from(self, interval: Interval) -> List[Interval]:
        """Return ``interval`` minus every member of this set."""
        pieces = [interval] if not interval.empty else []
        for mask in self._intervals:
            next_pieces: List[Interval] = []
            for piece in pieces:
                next_pieces.extend(piece.subtract(mask))
            pieces = next_pieces
            if not pieces:
                break
        return pieces

    def piece_containing(self, interval: Interval, timestamp: int) -> Interval:
        """Return the piece of ``interval - self`` that contains ``timestamp``.

        This is how the final validity interval of a query is derived: the
        result tuple validity minus the invalidity mask, restricted to the
        contiguous piece that includes the query's snapshot timestamp (the
        query result is known to be correct at that timestamp).
        """
        for piece in self.subtract_from(interval):
            if piece.contains(timestamp):
                return piece
        raise ValueError(
            f"timestamp {timestamp} not in {interval!r} minus mask {self._intervals!r}"
        )

    # ------------------------------------------------------------------
    # Binary wire codec (see repro.comm.wire)
    # ------------------------------------------------------------------
    def pack_into(self, out: bytearray) -> None:
        """Append a member count and every member's encoding to ``out``."""
        out += _COUNT.pack(len(self._intervals))
        for interval in self._intervals:
            interval.pack_into(out)

    @classmethod
    def unpack_from(cls, buf: bytes, offset: int) -> Tuple["IntervalSet", int]:
        """Decode one interval set; returns ``(set, next_offset)``.

        Members were packed from an existing set, so they are already
        disjoint and sorted; they are installed directly instead of being
        re-merged through :meth:`add`.
        """
        (count,) = _COUNT.unpack_from(buf, offset)
        offset += _COUNT.size
        members: List[Interval] = []
        for _ in range(count):
            interval, offset = Interval.unpack_from(buf, offset)
            members.append(interval)
        result = cls.__new__(cls)
        result._intervals = members
        return result, offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IntervalSet({self._intervals!r})"


def _touches(a: Interval, b: Interval) -> bool:
    """True if the intervals overlap or are adjacent (can be merged)."""
    a_hi = a.hi if a.hi is not None else float("inf")
    b_hi = b.hi if b.hi is not None else float("inf")
    return a.lo <= b_hi and b.lo <= a_hi
