"""Arrival schedules for the open-loop load generator.

A closed-loop driver issues the next operation when the previous one
completes, so a slow system *slows its own load down* and the measured
latency distribution silently omits exactly the samples that would have
shown the queueing — the coordinated-omission failure mode.  An open-loop
generator fixes the *offered* rate instead: operations arrive on a schedule
decided before the run starts, independent of how the system responds.

This module produces those schedules.  Two arrival processes are supported:

* ``"poisson"`` — exponentially distributed inter-arrival gaps from a seeded
  RNG: the memoryless arrival process of real user traffic, and the one the
  queueing results (M/G/k) assume.  Same seed, same schedule — runs are
  reproducible.
* ``"uniform"`` — deterministic fixed gaps of ``1/rate``: no burstiness at
  all, useful for isolating service-time effects from arrival variance.

Schedules *split* across worker processes by dividing the rate: the
superposition of k independent Poisson processes at ``rate/k`` is a Poisson
process at ``rate``, so per-worker generation preserves the offered-load
semantics without any cross-process coordination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

__all__ = ["ARRIVAL_KINDS", "ArrivalSchedule", "poisson_arrivals", "uniform_arrivals"]

#: Supported arrival processes.
ARRIVAL_KINDS = ("poisson", "uniform")

#: Seed stride between split sub-schedules (a prime, so derived seeds never
#: collide across nearby base seeds and worker counts).
_SEED_STRIDE = 7919


def poisson_arrivals(rate: float, count: int, seed: int) -> List[float]:
    """``count`` cumulative Poisson arrival times (seconds) at ``rate`` ops/s.

    Inter-arrival gaps are exponential with mean ``1/rate``, drawn from a
    private ``random.Random(seed)`` — the sequence is a pure function of
    ``(rate, count, seed)``.
    """
    if rate <= 0:
        raise ValueError(f"offered rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"arrival count must be non-negative, got {count}")
    rng = random.Random(seed)
    expovariate = rng.expovariate
    now = 0.0
    times: List[float] = []
    append = times.append
    for _ in range(count):
        now += expovariate(rate)
        append(now)
    return times


def uniform_arrivals(rate: float, count: int) -> List[float]:
    """``count`` deterministic arrival times spaced exactly ``1/rate`` apart."""
    if rate <= 0:
        raise ValueError(f"offered rate must be positive, got {rate}")
    if count < 0:
        raise ValueError(f"arrival count must be non-negative, got {count}")
    gap = 1.0 / rate
    return [(index + 1) * gap for index in range(count)]


@dataclass(frozen=True)
class ArrivalSchedule:
    """One worker's offered load: an arrival process, a rate, and a seed."""

    rate: float
    kind: str = "poisson"
    seed: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {list(ARRIVAL_KINDS)}"
            )
        if self.rate <= 0:
            raise ValueError(f"offered rate must be positive, got {self.rate}")

    def times(self, count: int) -> List[float]:
        """The first ``count`` arrival times (seconds since run start)."""
        if self.kind == "poisson":
            return poisson_arrivals(self.rate, count, self.seed)
        return uniform_arrivals(self.rate, count)

    def split(self, workers: int) -> List["ArrivalSchedule"]:
        """Divide this schedule across ``workers`` independent generators.

        Each sub-schedule offers ``rate/workers`` with a distinct derived
        seed; their superposition offers the original rate (exactly, for
        Poisson arrivals — splitting a Poisson process yields independent
        Poisson processes).
        """
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        return [
            ArrivalSchedule(
                rate=self.rate / workers,
                kind=self.kind,
                seed=self.seed * _SEED_STRIDE + index,
            )
            for index in range(workers)
        ]
