"""Capacity model: sustained ops/s × cluster shape → concurrent-user headroom.

The paper's bottom line is a provisioning statement — how many
application servers and cache nodes a given user population needs — so
the sweep results have to be convertible into that currency.  The model
is Little's law over the interactive loop: a user who issues one
interaction every ``think_time`` seconds consumes ``1/think_time`` ops/s
of capacity, so a tier sustaining ``R`` ops/s within SLO supports
``R × think_time`` concurrent users.  The default think time (7 s) is
the RUBiS browsing-mix transition time the paper's workload uses.

The model deliberately reports the *measured* sustained rate (the SLO
point if the sweep found one, else the knee), not the peak: capacity
planned at the saturation point has zero headroom by construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.bench.loadgen.sweep import SweepResult
from repro.bench.report import format_table

__all__ = ["CapacityModel", "capacity_report"]

#: RUBiS browsing-mix think time between interactions, seconds.
DEFAULT_THINK_TIME_SECONDS = 7.0


@dataclass(frozen=True)
class CapacityModel:
    """Concurrent-user capacity implied by one measured sustained rate."""

    label: str
    #: ops/s the measured deployment sustained (within SLO if one was set).
    sustained_ops_per_second: float
    #: p99 at the sustained rate, seconds (0.0 when unknown).
    p99_at_sustained: float
    #: Cache nodes in the measured deployment.
    cache_nodes: int
    #: Worker cores driving the measured deployment (processes, here).
    driver_cores: int
    think_time_seconds: float = DEFAULT_THINK_TIME_SECONDS

    @property
    def ops_per_core(self) -> float:
        """Sustained ops/s per driver core (the per-core unit of scaling)."""
        return (
            self.sustained_ops_per_second / self.driver_cores
            if self.driver_cores
            else 0.0
        )

    @property
    def ops_per_node(self) -> float:
        """Sustained ops/s per cache node."""
        return (
            self.sustained_ops_per_second / self.cache_nodes
            if self.cache_nodes
            else 0.0
        )

    @property
    def concurrent_users(self) -> float:
        """Little's law: users = sustained rate × think time."""
        return self.sustained_ops_per_second * self.think_time_seconds

    def users_at_nodes(self, nodes: int) -> float:
        """Linear node extrapolation of the user population.

        First-order only: assumes the cache tier is the bottleneck and
        scales linearly with nodes, which the consistent-hashing design
        supports until the invalidation stream or the database saturates.
        """
        return self.concurrent_users * (nodes / self.cache_nodes) if self.cache_nodes else 0.0

    def format_table(self, node_counts: Sequence[int] = (1, 2, 4, 8, 16)) -> str:
        header = ["cache nodes", "sustained ops/s", "concurrent users"]
        rows = [
            [
                str(nodes),
                f"{self.ops_per_node * nodes:,.0f}",
                f"{self.users_at_nodes(nodes):,.0f}",
            ]
            for nodes in node_counts
        ]
        title = (
            f"{self.label or 'capacity'}: {self.sustained_ops_per_second:,.0f} ops/s sustained "
            f"({self.ops_per_core:,.0f}/core x {self.driver_cores} cores, "
            f"think time {self.think_time_seconds:g}s)"
        )
        return format_table(header, rows, title=title)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "sustained_ops_per_second": self.sustained_ops_per_second,
            "p99_at_sustained_ms": self.p99_at_sustained * 1e3,
            "cache_nodes": self.cache_nodes,
            "driver_cores": self.driver_cores,
            "ops_per_core": self.ops_per_core,
            "ops_per_node": self.ops_per_node,
            "think_time_seconds": self.think_time_seconds,
            "concurrent_users": self.concurrent_users,
        }


def capacity_report(
    sweep: SweepResult,
    *,
    cache_nodes: int,
    driver_cores: Optional[int] = None,
    slo_seconds: Optional[float] = None,
    think_time_seconds: float = DEFAULT_THINK_TIME_SECONDS,
) -> Optional[CapacityModel]:
    """Turn a sweep into a capacity model, or ``None`` if nothing was absorbed.

    The sustained rate is the max rate under ``slo_seconds`` when given
    (the provisioning-grade number), else the goodput knee.
    ``driver_cores`` defaults to the machine's CPU count — the sweep's
    worker processes are the cores being modelled.
    """
    point = None
    if slo_seconds is not None:
        point = sweep.max_rate_under_slo(slo_seconds)
    if point is None:
        point = sweep.knee()
    if point is None:
        return None
    cores = driver_cores if driver_cores is not None else (os.cpu_count() or 1)
    return CapacityModel(
        label=sweep.label,
        sustained_ops_per_second=point.achieved_goodput,
        p99_at_sustained=point.p99,
        cache_nodes=cache_nodes,
        driver_cores=cores,
        think_time_seconds=think_time_seconds,
    )
