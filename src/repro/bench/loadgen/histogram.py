"""Log-bucketed latency histogram (HDR-style), mergeable across workers.

Recording a latency costs one ``math.log10`` and one list increment; memory
is a fixed array of buckets, never a per-operation list — a worker can
record millions of samples without its footprint or record cost growing.
Buckets are spaced geometrically (``buckets_per_decade`` per factor of 10),
so the *relative* error of any reported quantile is bounded by one bucket
width (≈2.6% at the default 90 buckets/decade) across the whole range from
microseconds to minutes — the same trade HdrHistogram makes with
significant figures.

Histograms from different workers (threads or forked processes) merge by
bucket-wise addition, provided they share a bucket layout; :meth:`to_dict`
and :meth:`from_dict` carry one across a process boundary as a small sparse
dict, so the multi-process driver's result queue stays cheap.  The true
maximum is tracked exactly and caps every reported quantile, so p99.9 of a
run never exceeds the worst latency that actually happened.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = ["LatencyHistogram"]

#: Quantiles the benchmark reports persist by default.
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0, 99.9)


class LatencyHistogram:
    """Fixed-size log-bucketed histogram of latencies in seconds."""

    __slots__ = (
        "min_latency",
        "max_latency",
        "buckets_per_decade",
        "_scale",
        "_counts",
        "_total",
        "_sum",
        "_max",
    )

    def __init__(
        self,
        min_latency: float = 1e-6,
        max_latency: float = 1000.0,
        buckets_per_decade: int = 90,
    ) -> None:
        if min_latency <= 0 or max_latency <= min_latency:
            raise ValueError(
                f"need 0 < min_latency < max_latency, got {min_latency}, {max_latency}"
            )
        if buckets_per_decade < 1:
            raise ValueError(f"buckets_per_decade must be positive, got {buckets_per_decade}")
        self.min_latency = min_latency
        self.max_latency = max_latency
        self.buckets_per_decade = buckets_per_decade
        #: Bucket index = floor(log10(v / min) * scale); +1 bucket catches
        #: the values rounding exactly onto the top edge.
        self._scale = float(buckets_per_decade)
        decades = math.log10(max_latency / min_latency)
        self._counts = [0] * (int(math.ceil(decades * buckets_per_decade)) + 2)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0

    # ------------------------------------------------------------------
    # Recording and merging
    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one latency sample (negative values clamp to zero)."""
        if seconds < 0.0:
            seconds = 0.0
        counts = self._counts
        if seconds <= self.min_latency:
            index = 0
        else:
            index = int(math.log10(seconds / self.min_latency) * self._scale) + 1
            last = len(counts) - 1
            if index > last:
                index = last  # clamped: beyond max_latency
        counts[index] += 1
        self._total += 1
        self._sum += seconds
        if seconds > self._max:
            self._max = seconds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Add ``other``'s samples into this histogram (same layout required)."""
        if (
            other.min_latency != self.min_latency
            or other.max_latency != self.max_latency
            or other.buckets_per_decade != self.buckets_per_decade
        ):
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"({self.min_latency}, {self.max_latency}, {self.buckets_per_decade}) vs "
                f"({other.min_latency}, {other.max_latency}, {other.buckets_per_decade})"
            )
        counts = self._counts
        for index, count in enumerate(other._counts):
            counts[index] += count
        self._total += other._total
        self._sum += other._sum
        if other._max > self._max:
            self._max = other._max
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._total

    @property
    def max(self) -> float:
        """The exact largest recorded sample."""
        return self._max

    @property
    def mean(self) -> float:
        return self._sum / self._total if self._total else 0.0

    def _bucket_upper_bound(self, index: int) -> float:
        """Largest value a bucket can hold (bucket 0 is ``<= min_latency``)."""
        if index == 0:
            return self.min_latency
        return self.min_latency * 10.0 ** (index / self._scale)

    def percentile(self, p: float) -> float:
        """The latency at percentile ``p`` (0-100], biased at most one bucket up.

        Returns the upper edge of the bucket where the cumulative count
        crosses ``p`` percent of samples — conservative for tail quantiles —
        capped by the exact maximum.  Returns 0.0 for an empty histogram.
        """
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self._total == 0:
            return 0.0
        target = int(math.ceil(self._total * (p / 100.0)))
        cumulative = 0
        last = len(self._counts) - 1
        for index, count in enumerate(self._counts):
            cumulative += count
            if cumulative >= target:
                if index == last:
                    # Overflow bucket (samples clamped past max_latency): its
                    # edge understates, the exact max is the honest answer.
                    return self._max
                return min(self._bucket_upper_bound(index), self._max)
        return self._max  # unreachable unless counts drifted; stay safe

    def percentiles(
        self, points: Sequence[float] = DEFAULT_PERCENTILES
    ) -> Dict[float, float]:
        """Several percentiles in one pass-per-point (the list is short)."""
        return {p: self.percentile(p) for p in points}

    # ------------------------------------------------------------------
    # Serialization (cross-process transfer, BENCH_*.json persistence)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A sparse, JSON-safe form: layout + ``[index, count]`` pairs."""
        return {
            "min_latency": self.min_latency,
            "max_latency": self.max_latency,
            "buckets_per_decade": self.buckets_per_decade,
            "buckets": [
                [index, count] for index, count in enumerate(self._counts) if count
            ],
            "total": self._total,
            "sum": self._sum,
            "max": self._max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        histogram = cls(
            min_latency=data["min_latency"],  # type: ignore[arg-type]
            max_latency=data["max_latency"],  # type: ignore[arg-type]
            buckets_per_decade=data["buckets_per_decade"],  # type: ignore[arg-type]
        )
        counts = histogram._counts
        for index, count in data["buckets"]:  # type: ignore[union-attr]
            counts[index] = count
        histogram._total = data["total"]  # type: ignore[assignment]
        histogram._sum = data["sum"]  # type: ignore[assignment]
        histogram._max = data["max"]  # type: ignore[assignment]
        return histogram

    @classmethod
    def merged(cls, shards: Iterable["LatencyHistogram"]) -> "LatencyHistogram":
        """Merge worker shards into one histogram (empty default layout if none)."""
        result: Optional[LatencyHistogram] = None
        for shard in shards:
            if result is None:
                result = cls(
                    min_latency=shard.min_latency,
                    max_latency=shard.max_latency,
                    buckets_per_decade=shard.buckets_per_decade,
                )
            result.merge(shard)
        return result if result is not None else cls()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        points: List[Tuple[float, float]] = sorted(self.percentiles().items())
        summary = ", ".join(f"p{p:g}={v * 1e3:.2f}ms" for p, v in points)
        return f"LatencyHistogram(n={self._total}, {summary})"
