"""Offered-rate sweeps: find the goodput knee and the p99-SLO ceiling.

An open-loop point at one rate tells you whether the system kept up *at
that rate*; capacity questions need the curve.  :func:`run_rate_sweep`
walks offered rates (a caller-provided list, or a geometric ramp) and
re-measures the same configuration at each, stopping once goodput
saturates — achieved falls below ``saturation_fraction`` of offered —
because past the knee an open-loop generator only builds an unbounded
queue and every later percentile is a function of run length, not of
the system.

Two summary numbers come out of a sweep:

* the **knee** — the highest measured rate the system still absorbed
  (achieved ≥ fraction × offered): the classic throughput capacity;
* the **max rate under a p99 SLO** — the highest rate whose tail stayed
  within a latency budget: the number a capacity planner actually
  provisions to, and always ≤ the knee.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.bench.loadgen.runner import OpenLoopConfig, OpenLoopResult, run_openloop_benchmark
from repro.bench.report import format_table

__all__ = ["RatePoint", "SweepResult", "run_rate_sweep"]

#: Achieved/offered ratio below which a rate counts as past saturation.
DEFAULT_SATURATION_FRACTION = 0.9


@dataclass(frozen=True)
class RatePoint:
    """One measured rate on the sweep curve (latencies in seconds)."""

    offered_rate: float
    achieved_goodput: float
    p50: float
    p95: float
    p99: float
    p999: float
    errors: int
    hit_rate: float
    #: p99 of the end-to-end latency's two attributable parts (seconds):
    #: queue wait (scheduled arrival -> issue; the generator falling
    #: behind) and service (issue -> completion; the system itself).  Past
    #: the knee queue wait dominates; before it, service does.
    queue_wait_p99: float = 0.0
    service_p99: float = 0.0

    @property
    def saturation(self) -> float:
        """Achieved as a fraction of offered (1.0 = fully absorbed)."""
        return self.achieved_goodput / self.offered_rate if self.offered_rate > 0 else 0.0

    @classmethod
    def from_result(cls, result: OpenLoopResult) -> "RatePoint":
        p = result.percentiles((50.0, 95.0, 99.0, 99.9))
        return cls(
            offered_rate=result.offered_rate,
            achieved_goodput=result.achieved_goodput,
            p50=p[50.0],
            p95=p[95.0],
            p99=p[99.0],
            p999=p[99.9],
            errors=result.errors,
            hit_rate=result.hit_rate,
            queue_wait_p99=result.queue_wait_histogram.percentile(99.0),
            service_p99=result.service_histogram.percentile(99.0),
        )


@dataclass
class SweepResult:
    """A measured offered-rate curve for one configuration."""

    label: str
    transport: str
    points: List[RatePoint]
    saturation_fraction: float = DEFAULT_SATURATION_FRACTION

    def knee(self, fraction: Optional[float] = None) -> Optional[RatePoint]:
        """The highest-rate point the system still absorbed, if any.

        A point is "absorbed" when achieved goodput is at least
        ``fraction`` of the offered rate; the knee is the last such point
        in offered-rate order — beyond it, queueing, not service, sets
        the curve.
        """
        threshold = self.saturation_fraction if fraction is None else fraction
        absorbed = [p for p in self.points if p.saturation >= threshold]
        return max(absorbed, key=lambda p: p.offered_rate) if absorbed else None

    def max_rate_under_slo(self, slo_seconds: float) -> Optional[RatePoint]:
        """The highest absorbed rate whose p99 stayed within ``slo_seconds``."""
        threshold = self.saturation_fraction
        within = [
            p
            for p in self.points
            if p.saturation >= threshold and p.p99 <= slo_seconds
        ]
        return max(within, key=lambda p: p.offered_rate) if within else None

    def format_table(self) -> str:
        header = [
            "offered ops/s",
            "achieved",
            "ratio",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p99.9 ms",
            "q-wait p99 ms",
            "service p99 ms",
        ]
        rows = [
            [
                f"{p.offered_rate:,.0f}",
                f"{p.achieved_goodput:,.1f}",
                f"{p.saturation:.2f}",
                f"{p.p50 * 1e3:.2f}",
                f"{p.p95 * 1e3:.2f}",
                f"{p.p99 * 1e3:.2f}",
                f"{p.p999 * 1e3:.2f}",
                f"{p.queue_wait_p99 * 1e3:.2f}",
                f"{p.service_p99 * 1e3:.2f}",
            ]
            for p in self.points
        ]
        title = f"{self.label or 'sweep'} ({self.transport})"
        return format_table(header, rows, title=title)


def run_rate_sweep(
    config: OpenLoopConfig,
    rates: Optional[Sequence[float]] = None,
    *,
    start_rate: float = 500.0,
    growth: float = 1.6,
    max_points: int = 8,
    seconds_per_point: float = 2.0,
    saturation_fraction: float = DEFAULT_SATURATION_FRACTION,
    runner: Callable[[OpenLoopConfig], OpenLoopResult] = run_openloop_benchmark,
) -> SweepResult:
    """Measure ``config`` across offered rates until goodput saturates.

    ``config`` is a template: each point re-runs it with ``offered_rate``
    set and ``total_ops`` sized so the point lasts ≈ ``seconds_per_point``
    (fixed *duration* per point, not fixed ops — otherwise high-rate
    points would be over in milliseconds and measure warmup, not steady
    state).  With explicit ``rates`` every listed rate is measured; with
    the geometric ramp the sweep stops one point after saturation, so the
    knee is bracketed from above.  ``runner`` is injectable for tests.
    """
    if rates is None:
        if start_rate <= 0 or growth <= 1.0 or max_points < 1:
            raise ValueError("geometric ramp needs start_rate > 0, growth > 1, max_points >= 1")
        schedule: List[float] = [start_rate * growth**i for i in range(max_points)]
        stop_on_saturation = True
    else:
        schedule = sorted(float(rate) for rate in rates)
        if not schedule or schedule[0] <= 0:
            raise ValueError(f"rates must be positive, got {rates!r}")
        stop_on_saturation = False
    points: List[RatePoint] = []
    transport = ""
    for rate in schedule:
        point_config = dataclasses.replace(
            config,
            offered_rate=rate,
            total_ops=max(1, int(rate * seconds_per_point)),
        )
        result = runner(point_config)
        transport = result.transport
        point = RatePoint.from_result(result)
        points.append(point)
        if stop_on_saturation and point.saturation < saturation_fraction:
            break
    return SweepResult(
        label=config.label,
        transport=transport,
        points=points,
        saturation_fraction=saturation_fraction,
    )
