"""The open-loop engine and the multi-process open-loop benchmark.

:func:`run_open_loop` is the measurement core: worker threads pull
operations off a *pre-computed arrival schedule* and charge each
operation's latency from its **scheduled** arrival time, not from the
moment a worker got around to issuing it.  A stalled system therefore
accumulates queueing delay in the recorded tail instead of silently
thinning the arrivals — the coordinated-omission fix (wrk2/HdrHistogram
style).  The same engine runs a ``"closed"`` mode that issues
back-to-back and times only service, purely so tests and reports can
show the two distributions diverge under a stall.

:func:`run_openloop_benchmark` wires the engine on top of the
multi-process driver's bootstrap (:mod:`repro.bench.driver`): the
coordinator starts the networked deployment, forks worker processes,
and each worker generates its own share of the arrival schedule
(Poisson splitting keeps the superposed offered rate exact) and drives
it with its own thread pool against the shared cache nodes.  Latency
histograms merge across threads and processes; the result reports
offered rate vs achieved goodput and the merged percentiles.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.driver import (
    _transport_label,
    build_worker_stack,
    fork_context,
    start_pages_deployment,
)
from repro.bench.loadgen.histogram import DEFAULT_PERCENTILES, LatencyHistogram
from repro.bench.loadgen.schedule import ArrivalSchedule
from repro.db.query import Eq, Select

__all__ = [
    "OpenLoopConfig",
    "OpenLoopResult",
    "OpenLoopStats",
    "run_open_loop",
    "run_openloop_benchmark",
]

#: Engine modes: ``"open"`` charges latency from the scheduled arrival,
#: ``"closed"`` issues back-to-back and times only service (the
#: coordinated-omission-prone baseline, kept for contrast).
LOOP_MODES = ("open", "closed")


@dataclass
class OpenLoopStats:
    """What one :func:`run_open_loop` call measured.

    ``histogram`` is the end-to-end latency (completion − scheduled
    arrival, the coordinated-omission-safe number).  It decomposes into
    two attributable parts recorded alongside it:

    * ``queue_wait_histogram`` — scheduled arrival → the moment a worker
      actually issued the operation: load the *generator* had to queue
      because the system fell behind;
    * ``service_histogram`` — issue → completion: the time the system
      itself took once asked.

    A saturated system shows queue wait exploding while service stays
    flat; a slow system shows the reverse.  The split is what tells the
    two apart on a sweep curve.
    """

    completed: int
    errors: int
    wall_seconds: float
    histogram: LatencyHistogram
    queue_wait_histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def achieved_rate(self) -> float:
        """Operations completed per wall-clock second (goodput)."""
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0


def run_open_loop(
    times: Sequence[float],
    make_executor: Callable[[int], Callable[[int], object]],
    threads: int = 1,
    mode: str = "open",
) -> OpenLoopStats:
    """Drive a pre-computed arrival schedule with a pool of worker threads.

    ``times`` are scheduled arrival offsets (seconds from run start,
    ascending); ``make_executor(thread_index)`` returns the callable one
    thread uses to execute operations (each thread gets its own, so
    executors can own non-thread-safe state like a client or an RNG).

    In ``"open"`` mode a thread claims the next arrival, sleeps until its
    scheduled time if early, executes, and records
    ``completion - scheduled`` — so when all threads are busy, operations
    queue and the wait is *charged to the tail* rather than deferring the
    schedule.  In ``"closed"`` mode threads issue back-to-back and record
    only ``completion - issue``: the loop that coordinated omission makes
    look deceptively fast.

    Failed operations count as errors and record no latency sample (they
    produced no result; goodput already reflects the loss).
    """
    if mode not in LOOP_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {list(LOOP_MODES)}")
    if threads < 1:
        raise ValueError(f"threads must be positive, got {threads}")
    total = len(times)
    histograms = [LatencyHistogram() for _ in range(threads)]
    queue_wait_histograms = [LatencyHistogram() for _ in range(threads)]
    service_histograms = [LatencyHistogram() for _ in range(threads)]
    errors = [0] * threads
    completed = [0] * threads
    if total == 0:
        return OpenLoopStats(0, 0, 0.0, LatencyHistogram())

    next_index = [0]
    index_lock = threading.Lock()
    start_box = [0.0]
    open_mode = mode == "open"

    def set_start() -> None:
        start_box[0] = time.perf_counter()

    barrier = threading.Barrier(threads, action=set_start)

    def run_thread(thread_index: int) -> None:
        execute = make_executor(thread_index)
        histogram = histograms[thread_index]
        queue_wait_histogram = queue_wait_histograms[thread_index]
        service_histogram = service_histograms[thread_index]
        barrier.wait()
        start = start_box[0]
        while True:
            with index_lock:
                op_index = next_index[0]
                if op_index >= total:
                    return
                next_index[0] = op_index + 1
            if open_mode:
                scheduled = start + times[op_index]
                delay = scheduled - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
            else:
                scheduled = time.perf_counter()
            issued = time.perf_counter()
            try:
                execute(op_index)
            except Exception:  # noqa: BLE001 - counted, the run continues
                errors[thread_index] += 1
                continue
            end = time.perf_counter()
            histogram.record(end - scheduled)
            # Attribution split: how long the op sat in the generator's
            # queue past its scheduled arrival vs how long the system took
            # once asked.  The clamp covers a worker picking the op up a
            # few ns early (sleep granularity), never real waiting.
            queue_wait_histogram.record(max(0.0, issued - scheduled))
            service_histogram.record(end - issued)
            completed[thread_index] += 1

    if threads == 1:
        run_thread(0)
    else:
        pool = [
            threading.Thread(target=run_thread, args=(i,), daemon=True)
            for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
    wall = time.perf_counter() - start_box[0]
    return OpenLoopStats(
        completed=sum(completed),
        errors=sum(errors),
        wall_seconds=wall,
        histogram=LatencyHistogram.merged(histograms),
        queue_wait_histogram=LatencyHistogram.merged(queue_wait_histograms),
        service_histogram=LatencyHistogram.merged(service_histograms),
    )


# ----------------------------------------------------------------------
# Multi-process open-loop benchmark (shares the driver's bootstrap)
# ----------------------------------------------------------------------
@dataclass
class OpenLoopConfig:
    """One open-loop measurement: an offered rate against one deployment.

    The deployment knobs mirror :class:`repro.bench.driver.MultiprocessConfig`
    — same forked-worker topology, same read-only ``pages`` workload — but
    the load is driven by an arrival schedule at ``offered_rate`` ops/s
    instead of a fixed per-thread interaction count.  Defaults select the
    fast wire stack (pipelined multiplexed transport, binary codec), the
    configuration the paper figures are re-measured on.
    """

    offered_rate: float = 2000.0
    #: Operations in the schedule; duration ≈ total_ops / offered_rate.
    total_ops: int = 4000
    arrival: str = "poisson"  # "poisson" | "uniform"
    mode: str = "open"  # "open" | "closed" (CO-prone contrast)
    processes: int = 2
    threads_per_process: int = 4
    transport: str = "socket-pipelined"
    socket_pipelined: Optional[bool] = None
    server_style: Optional[str] = None
    cache_nodes: int = 2
    cache_capacity_bytes_per_node: int = 8 * 1024 * 1024
    rows: int = 256
    staleness: float = 30.0
    socket_pool_size: Optional[int] = None
    #: Modelled LAN round trip per cache RPC (see CacheServerProcess).
    simulated_rpc_latency_seconds: float = 4e-4
    wire_codec: Optional[str] = "binary"
    mux_read_lease: bool = True
    write_coalescing: bool = True
    #: Pin each "socket-process" cache node to its own core (opt-in; the
    #: per-core experiment's intended deployment shape).
    cpu_pinning: bool = False
    seed: int = 1
    label: str = ""


@dataclass
class OpenLoopResult:
    """Outcome of one multi-process open-loop measurement."""

    label: str
    offered_rate: float
    mode: str
    arrival: str
    processes: int
    threads_per_process: int
    transport: str
    completed: int
    errors: int
    wall_seconds: float
    achieved_goodput: float
    hit_rate: float
    histogram: LatencyHistogram
    #: Latency-breakdown companions of ``histogram`` (see OpenLoopStats):
    #: scheduled arrival -> issue, and issue -> completion.
    queue_wait_histogram: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_histogram: LatencyHistogram = field(default_factory=LatencyHistogram)

    def percentiles(self, points: Sequence[float] = DEFAULT_PERCENTILES) -> Dict[float, float]:
        return self.histogram.percentiles(points)

    def summary(self) -> str:
        p = self.percentiles()
        q99 = self.queue_wait_histogram.percentile(99.0)
        s99 = self.service_histogram.percentile(99.0)
        return (
            f"{self.label or 'run'}: offered {self.offered_rate:8.0f} ops/s -> "
            f"achieved {self.achieved_goodput:8.1f} ops/s  "
            f"p50 {p[50.0] * 1e3:6.2f}ms  p99 {p[99.0] * 1e3:7.2f}ms "
            f"(queue-wait {q99 * 1e3:.2f}ms + service {s99 * 1e3:.2f}ms)  "
            f"hit rate {self.hit_rate:5.1%}"
        )


def _openloop_worker(
    index: int,
    addresses,
    schedule: ArrivalSchedule,
    ops: int,
    config: OpenLoopConfig,
    barrier,
    queue,
) -> None:
    """One forked worker: generate this process's arrivals and drive them.

    Runs in a child process.  Like the closed-loop driver's worker, it must
    always reach the barrier, so bootstrap failures are carried past it and
    reported through the queue instead of deadlocking the coordinator.
    """
    cluster = None
    bootstrap_error: Optional[str] = None
    clients: List = []
    try:
        cluster, clients = build_worker_stack(
            addresses,
            transport=config.transport,
            rows=config.rows,
            staleness=config.staleness,
            clients=config.threads_per_process,
            socket_pipelined=config.socket_pipelined,
            socket_pool_size=config.socket_pool_size or max(1, config.threads_per_process),
            wire_codec=config.wire_codec,
            mux_read_lease=config.mux_read_lease,
        )
    except Exception as exc:  # noqa: BLE001 - reported via the queue
        bootstrap_error = f"{type(exc).__name__}: {exc}"

    def make_executor(thread_index: int) -> Callable[[int], object]:
        client = clients[thread_index]
        rng = random.Random(config.seed * 100_000 + index * 100 + thread_index)

        @client.cacheable(name="bench_get_row")
        def get_row(row_id):
            return client.query(Select("pages", Eq("id", row_id))).rows[0]

        def execute(op_index: int) -> object:
            with client.read_only(staleness=config.staleness):
                return get_row(rng.randrange(config.rows))

        return execute

    try:
        barrier.wait(timeout=60)
    except Exception:
        bootstrap_error = bootstrap_error or "coordination barrier broke"
    if bootstrap_error is None:
        stats = run_open_loop(
            schedule.times(ops),
            make_executor,
            threads=config.threads_per_process,
            mode=config.mode,
        )
    else:
        stats = OpenLoopStats(0, 0, 0.0, LatencyHistogram())
    hits = misses = 0
    for client in clients:
        hits += client.stats.hits
        misses += client.stats.misses
    queue.put(
        {
            "index": index,
            "completed": stats.completed,
            "errors": stats.errors + (1 if bootstrap_error else 0),
            "hits": hits,
            "misses": misses,
            "histogram": stats.histogram.to_dict(),
            "queue_wait_histogram": stats.queue_wait_histogram.to_dict(),
            "service_histogram": stats.service_histogram.to_dict(),
            "bootstrap_error": bootstrap_error,
        }
    )
    if cluster is not None:
        cluster.close()


def run_openloop_benchmark(config: OpenLoopConfig) -> OpenLoopResult:
    """Offer a fixed rate to one deployment from forked worker processes.

    The coordinator starts the deployment (loaded and warmed), splits the
    arrival schedule across ``processes`` workers (rate divides; Poisson
    superposition restores the offered rate exactly), forks them, and times
    the run from the start-barrier release to the last worker's report —
    the wall clock the achieved goodput is computed against.
    """
    if config.processes < 1:
        raise ValueError("processes must be positive")
    if config.threads_per_process < 1:
        raise ValueError("threads_per_process must be positive")
    if config.total_ops < 1:
        raise ValueError("total_ops must be positive")
    if config.transport not in ("socket", "socket-pipelined", "socket-process"):
        raise ValueError("open-loop benchmark requires a socket transport")
    schedule = ArrivalSchedule(
        rate=config.offered_rate, kind=config.arrival, seed=config.seed
    )
    shares = schedule.split(config.processes)
    base, extra = divmod(config.total_ops, config.processes)
    ops_shares = [base + (1 if i < extra else 0) for i in range(config.processes)]

    deployment = start_pages_deployment(
        transport=config.transport,
        cache_nodes=config.cache_nodes,
        cache_capacity_bytes_per_node=config.cache_capacity_bytes_per_node,
        staleness=config.staleness,
        simulated_rpc_latency_seconds=config.simulated_rpc_latency_seconds,
        rows=config.rows,
        socket_pipelined=config.socket_pipelined,
        server_style=config.server_style,
        wire_codec=config.wire_codec,
        mux_read_lease=config.mux_read_lease,
        write_coalescing=config.write_coalescing,
        cpu_pinning=config.cpu_pinning,
    )
    try:
        addresses = {
            name: process.address
            for name, process in deployment.cache.processes.items()
        }
        context = fork_context()
        barrier = context.Barrier(config.processes + 1)
        queue = context.Queue()
        workers = [
            context.Process(
                target=_openloop_worker,
                args=(i, addresses, shares[i], ops_shares[i], config, barrier, queue),
                daemon=True,
            )
            for i in range(config.processes)
        ]
        for worker in workers:
            worker.start()
        barrier.wait(timeout=120)
        started = time.perf_counter()
        reports = [queue.get(timeout=600) for _ in workers]
        wall = time.perf_counter() - started
        for worker in workers:
            worker.join(timeout=30)

        completed = sum(report["completed"] for report in reports)
        hits = sum(report["hits"] for report in reports)
        misses = sum(report["misses"] for report in reports)
        looked_up = hits + misses
        histogram = LatencyHistogram.merged(
            LatencyHistogram.from_dict(report["histogram"]) for report in reports
        )
        queue_wait = LatencyHistogram.merged(
            LatencyHistogram.from_dict(report["queue_wait_histogram"])
            for report in reports
        )
        service = LatencyHistogram.merged(
            LatencyHistogram.from_dict(report["service_histogram"])
            for report in reports
        )
        return OpenLoopResult(
            label=config.label,
            offered_rate=config.offered_rate,
            mode=config.mode,
            arrival=config.arrival,
            processes=config.processes,
            threads_per_process=config.threads_per_process,
            transport=_transport_label(config),
            completed=completed,
            errors=sum(report["errors"] for report in reports),
            wall_seconds=wall,
            achieved_goodput=completed / wall if wall > 0 else 0.0,
            hit_rate=hits / looked_up if looked_up else 0.0,
            histogram=histogram,
            queue_wait_histogram=queue_wait,
            service_histogram=service,
        )
    finally:
        deployment.shutdown()
