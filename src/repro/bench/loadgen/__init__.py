"""Open-loop load generation: offered rates, CO-safe tails, capacity.

The subsystem in four layers, bottom up:

* :mod:`~repro.bench.loadgen.schedule` — seeded Poisson / deterministic
  arrival schedules that split across worker processes;
* :mod:`~repro.bench.loadgen.histogram` — log-bucketed mergeable latency
  histograms with bounded relative quantile error;
* :mod:`~repro.bench.loadgen.runner` — the coordinated-omission-safe
  engine and the multi-process open-loop benchmark;
* :mod:`~repro.bench.loadgen.sweep` / :mod:`~repro.bench.loadgen.capacity`
  — offered-rate sweeps (goodput knee, p99-SLO ceiling) and the
  concurrent-user capacity model.
"""

from repro.bench.loadgen.capacity import CapacityModel, capacity_report
from repro.bench.loadgen.histogram import DEFAULT_PERCENTILES, LatencyHistogram
from repro.bench.loadgen.runner import (
    OpenLoopConfig,
    OpenLoopResult,
    OpenLoopStats,
    run_open_loop,
    run_openloop_benchmark,
)
from repro.bench.loadgen.schedule import (
    ARRIVAL_KINDS,
    ArrivalSchedule,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.bench.loadgen.sweep import RatePoint, SweepResult, run_rate_sweep

__all__ = [
    "ARRIVAL_KINDS",
    "ArrivalSchedule",
    "CapacityModel",
    "DEFAULT_PERCENTILES",
    "LatencyHistogram",
    "OpenLoopConfig",
    "OpenLoopResult",
    "OpenLoopStats",
    "RatePoint",
    "SweepResult",
    "capacity_report",
    "poisson_arrivals",
    "run_open_loop",
    "run_openloop_benchmark",
    "run_rate_sweep",
    "uniform_arrivals",
]
