"""Plain-text rendering of experiment results (tables and series).

The paper presents its evaluation as plots (Figures 5-7) and one table
(Figure 8).  The reproduction prints the same rows/series as aligned text
tables so results can be compared side by side with the paper's reported
shapes.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render rows as an aligned text table."""
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def format_series(name: str, xs: Sequence[object], ys: Sequence[float], unit: str = "") -> str:
    """Render one x/y series as a compact text listing."""
    pairs = ", ".join(f"{x}:{y:,.1f}{unit}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        if abs(value) < 1 and value != 0:
            return f"{value:.1%}" if 0 < abs(value) <= 1 else f"{value:.3f}"
        return f"{value:,.1f}"
    return str(value)
