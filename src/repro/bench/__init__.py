"""Benchmark harness: cost model, cluster simulation, and paper experiments.

The paper's evaluation runs RUBiS on a ten-machine cluster and measures peak
requests per second as the number of emulated clients grows.  This package
reproduces each figure and table with a calibrated simulation: the RUBiS
workload really executes against the TxCache stack (so cache behaviour,
consistency, and invalidations are genuine), while machine time is accounted
for by a cost model (database CPU + buffer-cache-aware I/O, web-server CPU,
cache-server CPU) and peak throughput is derived from the measured
per-interaction demand on the bottleneck resource.
"""

from repro.bench.costmodel import ClusterSpec, CostModel, CostParameters
from repro.bench.driver import BenchmarkConfig, BenchmarkResult, ChurnEvent, run_benchmark
from repro.bench.experiments import (
    figure5,
    figure6,
    figure7,
    figure8,
    figures_openloop,
    node_churn,
    validity_tracking_overhead,
)
from repro.bench.loadgen import (
    ArrivalSchedule,
    CapacityModel,
    LatencyHistogram,
    OpenLoopConfig,
    OpenLoopResult,
    capacity_report,
    run_openloop_benchmark,
    run_rate_sweep,
)

__all__ = [
    "ArrivalSchedule",
    "CapacityModel",
    "LatencyHistogram",
    "OpenLoopConfig",
    "OpenLoopResult",
    "capacity_report",
    "figures_openloop",
    "run_openloop_benchmark",
    "run_rate_sweep",
    "CostModel",
    "CostParameters",
    "ClusterSpec",
    "BenchmarkConfig",
    "BenchmarkResult",
    "ChurnEvent",
    "run_benchmark",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "node_churn",
    "validity_tracking_overhead",
]
