"""Reproductions of every figure and table in the paper's evaluation (§8).

Each function runs the corresponding experiment and returns a structured
result with a ``format_table()`` method printing the same rows or series the
paper reports:

* :func:`figure5` — peak throughput vs cache size (Figure 5a: in-memory
  database with "No consistency", TxCache, and "No caching" lines;
  Figure 5b: disk-bound database with TxCache and "No caching").
* :func:`figure6` — cache hit rate vs cache size (Figures 6a and 6b; the
  data comes from the same runs as Figure 5).
* :func:`figure7` — peak throughput vs staleness limit, relative to the
  no-caching baseline (Figure 7).
* :func:`figure8` — breakdown of cache misses by type for four
  configurations (the table in Figure 8).
* :func:`validity_tracking_overhead` — the §8.1 observation that the
  database modifications (validity tracking + invalidation tags) have
  negligible overhead compared to a stock database.

Scaling: the paper's cache sizes are given in MB/GB against an 850 MB /
6 GB database.  The reproduction scales the dataset down by
``BenchmarkConfig.scale`` (default 100×) and maps the paper's cache-size
labels onto proportionally small byte budgets (`CACHE_BYTES_PER_PAPER_MB`),
preserving the ratio of cache size to working set, which is what shapes the
curves.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.rubis.datagen import DISK_BOUND_CONFIG, IN_MEMORY_CONFIG, RubisConfig
from repro.apps.rubis.schema import create_rubis_schema
from repro.apps.rubis.datagen import populate_database
from repro.bench.driver import (
    BenchmarkConfig,
    BenchmarkResult,
    ChurnEvent,
    ConcurrencyConfig,
    ConcurrencyResult,
    MultiprocessConfig,
    MultiprocessResult,
    TimedChurnEvent,
    rolling_restart_events,
    run_benchmark,
    run_concurrent_benchmark,
    run_multiprocess_benchmark,
)
from repro.bench.loadgen import (
    ArrivalSchedule,
    CapacityModel,
    OpenLoopConfig,
    OpenLoopResult,
    OpenLoopStats,
    capacity_report,
    run_open_loop,
    run_rate_sweep,
)
from repro.bench.perflog import record_figures_benchmark
from repro.bench.report import format_table
from repro.cache.netserver import DEFAULT_POOL_SIZE
from repro.clock import ManualClock
from repro.core.stats import MissType
from repro.db.database import Database
from repro.db.query import Eq, Select

__all__ = [
    "ExperimentSettings",
    "Figure5Result",
    "Figure7Result",
    "Figure8Result",
    "OverheadResult",
    "ChurnResult",
    "CrashChurnResult",
    "RollingRestartResult",
    "ConcurrentClientsResult",
    "ConcurrentChurnResult",
    "PipelinedClientsResult",
    "FigureOpenLoopResult",
    "PerCoreOpenLoopResult",
    "RepairOpenLoopResult",
    "RepairOpenLoopRun",
    "ChaosOpenLoopResult",
    "ChaosOpenLoopRun",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figures_openloop",
    "node_churn",
    "crash_churn",
    "rolling_restart",
    "concurrent_clients",
    "concurrent_churn",
    "pipelined_clients",
    "percore_openloop",
    "repair_openloop",
    "chaos_openloop",
    "PERCORE_MIN_CORES",
    "PERCORE_NODE_COUNTS",
    "validity_tracking_overhead",
    "PAPER_IN_MEMORY_CACHE_MB",
    "PAPER_DISK_BOUND_CACHE_GB",
]

#: Bytes of simulated cache per "paper megabyte" of cache (in-memory
#: configuration).  The dataset is scaled down ~100x and Python object
#: overhead differs from memcached's, so this constant maps the paper's
#: x-axis labels onto budgets spanning the same range relative to the scaled
#: working set: the knee of the curve falls around the 512-768MB labels, as
#: in Figure 5(a)/6(a).
CACHE_BYTES_PER_PAPER_MB = 768

#: Mapping of the disk-bound configuration's 1-9 GB x-axis onto simulated
#: bytes: ``base + GB * slope``, calibrated so the smallest point already
#: covers the hot set (speedup > 1, as in the paper) while the sweep keeps
#: rising towards the workload's touched footprint, as in Figure 5(b).
CACHE_BYTES_DISK_BASE = 288 * 1024
CACHE_BYTES_PER_PAPER_GB_DISK = 96 * 1024

#: Cache sizes (in paper MB) used for Figure 5(a)/6(a).
PAPER_IN_MEMORY_CACHE_MB = [64, 256, 512, 768, 1024]

#: Cache sizes (in paper GB) used for Figure 5(b)/6(b).
PAPER_DISK_BOUND_CACHE_GB = [1, 2, 3, 4, 5, 6, 7, 8, 9]

#: Staleness limits (seconds) swept in Figure 7.
FIGURE7_STALENESS_LIMITS = [1, 5, 10, 20, 30, 60, 90, 120]


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling how long the experiments take.

    ``quick`` settings finish in tens of seconds and are used by the pytest
    benchmarks; ``full()`` settings run more interactions and more points for
    smoother curves.
    """

    scale: int = 100
    sessions: int = 16
    warmup_interactions: int = 1200
    measure_interactions: int = 2500
    seed: int = 1

    @staticmethod
    def quick() -> "ExperimentSettings":
        return ExperimentSettings(
            scale=150, sessions=12, warmup_interactions=700, measure_interactions=1200
        )

    @staticmethod
    def full() -> "ExperimentSettings":
        return ExperimentSettings(
            scale=60, sessions=24, warmup_interactions=3000, measure_interactions=6000
        )

    def config(
        self,
        database_config: RubisConfig,
        cache_size_bytes: int,
        staleness: float = 30.0,
        mode=None,
        label: str = "",
    ) -> BenchmarkConfig:
        from repro.core.api import ConsistencyMode

        return BenchmarkConfig(
            database_config=database_config,
            cache_size_bytes=cache_size_bytes,
            staleness=staleness,
            mode=mode if mode is not None else ConsistencyMode.CONSISTENT,
            scale=self.scale,
            sessions=self.sessions,
            warmup_interactions=self.warmup_interactions,
            measure_interactions=self.measure_interactions,
            seed=self.seed,
            label=label,
        )


def _cache_bytes(paper_mb: float) -> int:
    """Simulated cache bytes for an in-memory-configuration label in MB."""
    return max(16 * 1024, int(paper_mb * CACHE_BYTES_PER_PAPER_MB))


def _disk_cache_bytes(paper_gb: float) -> int:
    """Simulated cache bytes for a disk-bound-configuration label in GB."""
    return int(CACHE_BYTES_DISK_BASE + paper_gb * CACHE_BYTES_PER_PAPER_GB_DISK)


# ----------------------------------------------------------------------
# Figures 5 and 6: cache size sweeps
# ----------------------------------------------------------------------
@dataclass
class Figure5Result:
    """Throughput and hit rate versus cache size for one database config."""

    configuration: str
    cache_labels: List[str]
    baseline_throughput: float
    txcache: List[BenchmarkResult]
    no_consistency: List[Optional[BenchmarkResult]]
    elapsed_seconds: float = 0.0

    @property
    def speedups(self) -> List[float]:
        """TxCache speedup over the no-caching baseline, per cache size."""
        return [r.peak_throughput / self.baseline_throughput for r in self.txcache]

    @property
    def hit_rates(self) -> List[float]:
        return [r.hit_rate for r in self.txcache]

    def format_table(self) -> str:
        rows = []
        for index, label in enumerate(self.cache_labels):
            no_cons = self.no_consistency[index]
            rows.append(
                [
                    label,
                    f"{self.txcache[index].peak_throughput:,.1f}",
                    f"{no_cons.peak_throughput:,.1f}" if no_cons else "-",
                    f"{self.baseline_throughput:,.1f}",
                    f"{self.speedups[index]:.2f}x",
                    f"{self.txcache[index].hit_rate:.1%}",
                ]
            )
        return format_table(
            ["cache size", "TxCache req/s", "No consistency", "No caching", "speedup", "hit rate"],
            rows,
            title=f"Figure 5/6 ({self.configuration} database, 30 s staleness)",
        )

    def format_hit_rate_table(self) -> str:
        rows = [
            [label, f"{result.hit_rate:.1%}"]
            for label, result in zip(self.cache_labels, self.txcache)
        ]
        return format_table(
            ["cache size", "hit rate"],
            rows,
            title=f"Figure 6 ({self.configuration} database)",
        )


def figure5(
    configuration: str = "in-memory",
    settings: Optional[ExperimentSettings] = None,
    cache_points: Optional[Sequence[float]] = None,
    include_no_consistency: Optional[bool] = None,
    staleness: float = 30.0,
) -> Figure5Result:
    """Reproduce Figure 5 (and the data behind Figure 6) for one database.

    ``configuration`` is ``"in-memory"`` or ``"disk-bound"``.  The paper
    plots the "No consistency" variant only for the in-memory database, which
    is the default behaviour here as well.
    """
    from repro.core.api import ConsistencyMode

    settings = settings or ExperimentSettings.quick()
    started = time.time()
    if configuration == "in-memory":
        db_config = IN_MEMORY_CONFIG
        points = list(cache_points) if cache_points is not None else list(PAPER_IN_MEMORY_CACHE_MB)
        labels = [f"{int(p)}MB" for p in points]
        sizes = [_cache_bytes(p) for p in points]
        if include_no_consistency is None:
            include_no_consistency = True
    elif configuration == "disk-bound":
        db_config = DISK_BOUND_CONFIG
        points = list(cache_points) if cache_points is not None else list(PAPER_DISK_BOUND_CACHE_GB)
        labels = [f"{int(p)}GB" for p in points]
        sizes = [_disk_cache_bytes(p) for p in points]
        if include_no_consistency is None:
            include_no_consistency = False
    else:
        raise ValueError(f"unknown configuration {configuration!r}")

    baseline = run_benchmark(
        settings.config(
            db_config,
            cache_size_bytes=sizes[-1],
            staleness=staleness,
            mode=ConsistencyMode.NO_CACHE,
            label=f"{configuration}-no-caching",
        )
    )

    txcache_results: List[BenchmarkResult] = []
    no_consistency_results: List[Optional[BenchmarkResult]] = []
    for label, size in zip(labels, sizes):
        txcache_results.append(
            run_benchmark(
                settings.config(
                    db_config,
                    cache_size_bytes=size,
                    staleness=staleness,
                    mode=ConsistencyMode.CONSISTENT,
                    label=f"{configuration}-txcache-{label}",
                )
            )
        )
        if include_no_consistency:
            no_consistency_results.append(
                run_benchmark(
                    settings.config(
                        db_config,
                        cache_size_bytes=size,
                        staleness=staleness,
                        mode=ConsistencyMode.NO_CONSISTENCY,
                        label=f"{configuration}-noconsistency-{label}",
                    )
                )
            )
        else:
            no_consistency_results.append(None)

    return Figure5Result(
        configuration=configuration,
        cache_labels=labels,
        baseline_throughput=baseline.peak_throughput,
        txcache=txcache_results,
        no_consistency=no_consistency_results,
        elapsed_seconds=time.time() - started,
    )


def figure6(
    configuration: str = "in-memory",
    settings: Optional[ExperimentSettings] = None,
    cache_points: Optional[Sequence[float]] = None,
) -> Figure5Result:
    """Reproduce Figure 6 (hit rate vs cache size).

    The hit-rate data comes from the same runs as Figure 5; this function
    simply runs the sweep without the "No consistency" variant and presents
    the hit-rate view.
    """
    return figure5(
        configuration=configuration,
        settings=settings,
        cache_points=cache_points,
        include_no_consistency=False,
    )


# ----------------------------------------------------------------------
# Figure 7: staleness sweep
# ----------------------------------------------------------------------
@dataclass
class Figure7Result:
    """Relative throughput versus staleness limit."""

    staleness_limits: List[float]
    in_memory_relative: List[float]
    disk_bound_relative: List[float]
    in_memory_baseline: float
    disk_bound_baseline: float
    elapsed_seconds: float = 0.0

    def format_table(self) -> str:
        rows = []
        for index, limit in enumerate(self.staleness_limits):
            rows.append(
                [
                    f"{limit:g}s",
                    f"{self.in_memory_relative[index]:.2f}x",
                    f"{self.disk_bound_relative[index]:.2f}x",
                ]
            )
        return format_table(
            ["staleness limit", "in-memory (512MB cache)", "disk-bound (9GB cache)"],
            rows,
            title="Figure 7: relative throughput vs staleness limit (baseline = no caching = 1.0x)",
        )


def figure7(
    settings: Optional[ExperimentSettings] = None,
    staleness_limits: Optional[Sequence[float]] = None,
    include_disk_bound: bool = True,
) -> Figure7Result:
    """Reproduce Figure 7: peak throughput as the staleness limit varies."""
    from repro.core.api import ConsistencyMode

    settings = settings or ExperimentSettings.quick()
    started = time.time()
    limits = list(staleness_limits) if staleness_limits is not None else list(FIGURE7_STALENESS_LIMITS)

    in_memory_baseline = run_benchmark(
        settings.config(
            IN_MEMORY_CONFIG,
            cache_size_bytes=_cache_bytes(512),
            mode=ConsistencyMode.NO_CACHE,
            label="fig7-in-memory-baseline",
        )
    ).peak_throughput
    disk_baseline = 0.0
    if include_disk_bound:
        disk_baseline = run_benchmark(
            settings.config(
                DISK_BOUND_CONFIG,
                cache_size_bytes=_disk_cache_bytes(9),
                mode=ConsistencyMode.NO_CACHE,
                label="fig7-disk-baseline",
            )
        ).peak_throughput

    in_memory_relative: List[float] = []
    disk_relative: List[float] = []
    for limit in limits:
        result = run_benchmark(
            settings.config(
                IN_MEMORY_CONFIG,
                cache_size_bytes=_cache_bytes(512),
                staleness=limit,
                label=f"fig7-in-memory-{limit}s",
            )
        )
        in_memory_relative.append(result.peak_throughput / in_memory_baseline)
        if include_disk_bound:
            disk_result = run_benchmark(
                settings.config(
                    DISK_BOUND_CONFIG,
                    cache_size_bytes=_disk_cache_bytes(9),
                    staleness=limit,
                    label=f"fig7-disk-{limit}s",
                )
            )
            disk_relative.append(disk_result.peak_throughput / disk_baseline)
        else:
            disk_relative.append(float("nan"))

    return Figure7Result(
        staleness_limits=[float(limit) for limit in limits],
        in_memory_relative=in_memory_relative,
        disk_bound_relative=disk_relative,
        in_memory_baseline=in_memory_baseline,
        disk_bound_baseline=disk_baseline,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Figure 8: miss breakdown
# ----------------------------------------------------------------------
@dataclass
class Figure8Result:
    """Breakdown of cache misses by type for several configurations."""

    columns: List[str]
    breakdowns: List[Dict[MissType, float]]
    hit_rates: List[float]
    elapsed_seconds: float = 0.0

    def format_table(self) -> str:
        rows = []
        for miss_type, label in (
            (MissType.COMPULSORY, "Compulsory"),
            (MissType.STALE_OR_CAPACITY, "Stale / Cap."),
            (MissType.CONSISTENCY, "Consistency"),
        ):
            rows.append(
                [label] + [f"{breakdown[miss_type]:.1%}" for breakdown in self.breakdowns]
            )
        return format_table(
            ["miss type"] + self.columns,
            rows,
            title="Figure 8: breakdown of cache misses by type (percent of total misses)",
        )


def figure8(settings: Optional[ExperimentSettings] = None) -> Figure8Result:
    """Reproduce Figure 8: miss-type breakdown for four configurations."""
    settings = settings or ExperimentSettings.quick()
    started = time.time()
    configurations: List[Tuple[str, RubisConfig, int, float]] = [
        ("in-mem 512MB / 30s", IN_MEMORY_CONFIG, _cache_bytes(512), 30.0),
        ("in-mem 512MB / 15s", IN_MEMORY_CONFIG, _cache_bytes(512), 15.0),
        ("in-mem 64MB / 30s", IN_MEMORY_CONFIG, _cache_bytes(64), 30.0),
        ("disk 9GB / 30s", DISK_BOUND_CONFIG, _disk_cache_bytes(9), 30.0),
    ]
    columns: List[str] = []
    breakdowns: List[Dict[MissType, float]] = []
    hit_rates: List[float] = []
    for label, db_config, cache_bytes, staleness in configurations:
        result = run_benchmark(
            settings.config(
                db_config,
                cache_size_bytes=cache_bytes,
                staleness=staleness,
                label=f"fig8-{label}",
            )
        )
        columns.append(label)
        breakdowns.append(result.miss_fractions)
        hit_rates.append(result.hit_rate)
    return Figure8Result(
        columns=columns,
        breakdowns=breakdowns,
        hit_rates=hit_rates,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Node churn: cache-tier elasticity (beyond the paper's static deployment)
# ----------------------------------------------------------------------
def _churn_config(
    settings: ExperimentSettings,
    label: str,
    churn,
    window: int,
    transport: str,
    cache_mb: float,
    replication: int = 1,
) -> BenchmarkConfig:
    """One churn-scenario benchmark config (shared by the churn experiments).

    Capacity is held constant *per copy*: a deployment enabling R-way
    replication provisions R× memory, so replicated-vs-not comparisons
    isolate the availability effect of replication, not its capacity cost.
    """
    cfg = settings.config(
        IN_MEMORY_CONFIG,
        cache_size_bytes=_cache_bytes(cache_mb) * replication,
        label=label,
    )
    cfg.transport = transport
    cfg.replication_factor = replication
    cfg.churn = churn
    cfg.hit_rate_window = window
    return cfg



@dataclass
class ChurnResult:
    """Hit-rate recovery after a cache node joins mid-measurement.

    Three runs of the same workload: an undisturbed baseline, a join with
    live key migration, and a cold join.  The timelines (one hit-rate sample
    per ``window`` interactions) show the cold join's miss trough and how
    migration removes it.
    """

    window: int
    join_at: int
    baseline: BenchmarkResult
    with_migration: BenchmarkResult
    without_migration: BenchmarkResult
    elapsed_seconds: float = 0.0

    def _post_join_windows(self, result: BenchmarkResult) -> List[float]:
        start = self.join_at // self.window
        return result.hit_rate_timeline[start:]

    def trough(self, result: BenchmarkResult) -> float:
        """Worst post-join window hit rate (the cold-miss dip, if any)."""
        windows = self._post_join_windows(result)
        return min(windows) if windows else 0.0

    def recovered(self, result: BenchmarkResult) -> float:
        """Mean hit rate over the second half of the post-join windows."""
        windows = self._post_join_windows(result)
        tail = windows[len(windows) // 2 :]
        return sum(tail) / len(tail) if tail else 0.0

    def format_table(self) -> str:
        rows = []
        for label, result in (
            ("no churn (baseline)", self.baseline),
            ("join + migration", self.with_migration),
            ("join, cold", self.without_migration),
        ):
            rows.append(
                [
                    label,
                    f"{result.hit_rate:.1%}",
                    f"{self.trough(result):.1%}",
                    f"{self.recovered(result):.1%}",
                    f"{result.entries_migrated}",
                    f"{result.membership_epochs}",
                ]
            )
        return format_table(
            ["scenario", "overall hit rate", "post-join trough", "recovered", "entries migrated", "epochs"],
            rows,
            title=(
                f"Node churn: one node joins at interaction {self.join_at} "
                f"(hit rate per {self.window}-interaction window)"
            ),
        )


def node_churn(
    settings: Optional[ExperimentSettings] = None,
    cache_mb: float = 512,
    join_fraction: float = 0.35,
    window: int = 150,
    transport: str = "inprocess",
) -> ChurnResult:
    """Measure hit-rate recovery after a planned cache-node join.

    A node joins the warmed cluster ``join_fraction`` of the way through the
    measurement phase.  With live migration the remapped slice arrives warm
    and the hit rate stays within a few points of the no-churn baseline;
    without it the slice cold-starts and the timeline shows a miss trough
    that only refills with traffic.
    """
    settings = settings or ExperimentSettings.quick()
    started = time.time()
    join_at = max(1, int(settings.measure_interactions * join_fraction))

    def config(label: str, churn) -> BenchmarkConfig:
        return _churn_config(settings, label, churn, window, transport, cache_mb)

    baseline = run_benchmark(config("churn-baseline", ()))
    with_migration = run_benchmark(
        config("churn-join-migrated", (ChurnEvent(join_at, "join", migrate=True),))
    )
    without_migration = run_benchmark(
        config("churn-join-cold", (ChurnEvent(join_at, "join", migrate=False),))
    )
    return ChurnResult(
        window=window,
        join_at=join_at,
        baseline=baseline,
        with_migration=with_migration,
        without_migration=without_migration,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Crash churn: unplanned node death, with and without replication
# ----------------------------------------------------------------------
@dataclass
class CrashChurnResult:
    """Hit-rate impact of an unplanned node crash, by replication factor.

    Three runs of the same workload: an undisturbed replicated baseline, a
    mid-measurement crash with replication, and the same crash without it.
    A planned leave can migrate; a crash cannot — so this is the scenario
    replication exists for: with R >= 2 the surviving replicas keep serving
    the dead node's slice (no cold-miss trough), while the unreplicated run
    loses it outright and shows the trough until traffic refills it.
    """

    window: int
    crash_at: int
    replication_factor: int
    baseline: BenchmarkResult
    replicated: BenchmarkResult
    unreplicated: BenchmarkResult
    elapsed_seconds: float = 0.0

    def _post_crash_windows(self, result: BenchmarkResult) -> List[float]:
        start = self.crash_at // self.window
        return result.hit_rate_timeline[start:]

    def trough(self, result: BenchmarkResult) -> float:
        """Worst post-crash window hit rate (the cold-miss dip, if any)."""
        windows = self._post_crash_windows(result)
        return min(windows) if windows else 0.0

    def recovered(self, result: BenchmarkResult) -> float:
        """Mean hit rate over the second half of the post-crash windows."""
        windows = self._post_crash_windows(result)
        tail = windows[len(windows) // 2 :]
        return sum(tail) / len(tail) if tail else 0.0

    def format_table(self) -> str:
        rows = []
        for label, result in (
            (f"no crash (R={self.replication_factor})", self.baseline),
            (f"crash, R={self.replication_factor}", self.replicated),
            ("crash, unreplicated", self.unreplicated),
        ):
            rows.append(
                [
                    label,
                    f"{result.hit_rate:.1%}",
                    f"{self.trough(result):.1%}",
                    f"{self.recovered(result):.1%}",
                    f"{result.replica_hits}",
                    f"{result.degraded_lookups}",
                    f"{result.nodes_evicted}",
                ]
            )
        return format_table(
            [
                "scenario",
                "overall hit rate",
                "post-crash trough",
                "recovered",
                "replica hits",
                "degraded lookups",
                "evicted",
            ],
            rows,
            title=(
                f"Crash churn: one node dies at interaction {self.crash_at} "
                f"(hit rate per {self.window}-interaction window)"
            ),
        )


def crash_churn(
    settings: Optional[ExperimentSettings] = None,
    cache_mb: float = 768,
    crash_fraction: float = 0.35,
    window: int = 150,
    transport: str = "inprocess",
    replication_factor: int = 2,
) -> CrashChurnResult:
    """Measure hit-rate survival of an unplanned cache-node crash.

    A node crashes ``crash_fraction`` of the way through the measurement
    phase.  With ``replication_factor >= 2`` every key has a live copy on a
    ring successor, reads fail over, and anti-entropy repair restores the
    replication factor — the hit-rate timeline stays within a few points of
    the no-crash baseline.  Unreplicated, the dead node's slice is simply
    gone and the timeline shows the cold-miss trough.
    """
    settings = settings or ExperimentSettings.quick()
    started = time.time()
    crash_at = max(1, int(settings.measure_interactions * crash_fraction))

    def config(label: str, churn, replication: int) -> BenchmarkConfig:
        return _churn_config(
            settings, label, churn, window, transport, cache_mb, replication
        )

    crash = (ChurnEvent(crash_at, "crash"),)
    baseline = run_benchmark(config("crash-baseline", (), replication_factor))
    replicated = run_benchmark(config("crash-replicated", crash, replication_factor))
    unreplicated = run_benchmark(config("crash-unreplicated", crash, 1))
    return CrashChurnResult(
        window=window,
        crash_at=crash_at,
        replication_factor=replication_factor,
        baseline=baseline,
        replicated=replicated,
        unreplicated=unreplicated,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Rolling restart: crash + warm rejoin across the whole tier
# ----------------------------------------------------------------------
@dataclass
class RollingRestartResult:
    """Hit-rate impact of restarting every cache node, one at a time."""

    window: int
    events: List[ChurnEvent]
    baseline: BenchmarkResult
    replicated: BenchmarkResult
    unreplicated: BenchmarkResult
    elapsed_seconds: float = 0.0

    def trough(self, result: BenchmarkResult) -> float:
        """Worst window hit rate across the whole restart schedule."""
        start = min(event.at_interaction for event in self.events) // self.window
        windows = result.hit_rate_timeline[start:]
        return min(windows) if windows else 0.0

    def format_table(self) -> str:
        rows = []
        for label, result in (
            ("no restarts", self.baseline),
            ("rolling restart, replicated", self.replicated),
            ("rolling restart, unreplicated", self.unreplicated),
        ):
            rows.append(
                [
                    label,
                    f"{result.hit_rate:.1%}",
                    f"{self.trough(result):.1%}",
                    f"{result.membership_epochs}",
                    f"{result.entries_migrated}",
                    f"{result.replica_hits}",
                ]
            )
        return format_table(
            ["scenario", "overall hit rate", "worst window", "epochs", "migrated", "replica hits"],
            rows,
            title="Rolling restart: every cache node crashes and warm-rejoins in turn",
        )


def rolling_restart(
    settings: Optional[ExperimentSettings] = None,
    cache_mb: float = 768,
    window: int = 100,
    transport: str = "inprocess",
    replication_factor: int = 2,
) -> RollingRestartResult:
    """Crash-and-rejoin every cache node in sequence (ops-style restart).

    Each node dies without warning and rejoins warm ``downtime``
    interactions later; the next node follows after a gap.  Replication
    covers the downtime window (reads fail over to the survivor's copies);
    the warm rejoin re-migrates the node's slice on the way back in.
    """
    settings = settings or ExperimentSettings.quick()
    started = time.time()
    measure = settings.measure_interactions
    start = max(1, measure // 4)
    gap = max(2, measure // 4)
    downtime = max(1, gap // 3)

    def config(label: str, churn, replication: int) -> BenchmarkConfig:
        return _churn_config(
            settings, label, churn, window, transport, cache_mb, replication
        )

    # Derive the node names from the same cluster spec the driver resolves
    # for these configs (the initial ring is always cache0..cacheN-1).
    node_count = config("restart-probe", (), replication_factor).resolved_cluster().cache_nodes
    events = rolling_restart_events(
        [f"cache{i}" for i in range(node_count)], start=start, downtime=downtime, gap=gap
    )

    baseline = run_benchmark(config("restart-baseline", (), replication_factor))
    replicated = run_benchmark(config("restart-replicated", tuple(events), replication_factor))
    unreplicated = run_benchmark(config("restart-unreplicated", tuple(events), 1))
    return RollingRestartResult(
        window=window,
        events=events,
        baseline=baseline,
        replicated=replicated,
        unreplicated=unreplicated,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Concurrent clients: throughput-vs-threads scaling (wall clock)
# ----------------------------------------------------------------------
@dataclass
class ConcurrentClientsResult:
    """Wall-clock throughput as worker threads are added, per transport.

    ``results[transport]`` holds one :class:`ConcurrencyResult` per entry of
    ``thread_counts``.  The socket transport should scale: each worker keeps
    an RPC in flight on its own pooled connection, so modelled network time
    overlaps.  The in-process transport stays flat on CPython — every cache
    call is pure Python under the GIL, which is itself a finding this
    experiment documents (the scaling lives in the transport, not the GIL).
    """

    thread_counts: List[int]
    results: Dict[str, List[ConcurrencyResult]]
    elapsed_seconds: float = 0.0

    def scaling(self, transport: str) -> List[float]:
        """Throughput relative to the 1-thread run of the same transport."""
        series = self.results[transport]
        base = series[0].ops_per_second or 1.0
        return [result.ops_per_second / base for result in series]

    def format_table(self) -> str:
        rows = []
        for transport, series in self.results.items():
            scaling = self.scaling(transport)
            for index, result in enumerate(series):
                rows.append(
                    [
                        transport,
                        f"{result.threads}",
                        f"{result.ops_per_second:,.0f}",
                        f"{scaling[index]:.2f}x",
                        f"{result.hit_rate:.1%}",
                        f"{result.write_conflicts}",
                    ]
                )
        return format_table(
            ["transport", "threads", "ops/sec", "scaling", "hit rate", "write conflicts"],
            rows,
            title="Concurrent clients: wall-clock throughput vs worker threads",
        )


def concurrent_clients(
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    transports: Sequence[str] = ("inprocess", "socket"),
    interactions_per_thread: int = 400,
    simulated_rpc_latency_seconds: float = 4e-4,
    write_fraction: float = 0.05,
    seed: int = 1,
) -> ConcurrentClientsResult:
    """Measure the throughput-vs-threads scaling curve under both transports.

    Each point builds a fresh deployment and drives it with K worker
    threads, each owning a :class:`repro.core.api.TxCacheClient`.  The
    socket points model the paper's LAN round trip
    (``simulated_rpc_latency_seconds``) so there is network time for
    concurrent requests to overlap — on a bare loopback a single Python
    thread already saturates one core and no transport could scale.
    """
    started = time.time()
    results: Dict[str, List[ConcurrencyResult]] = {}
    for transport in transports:
        series: List[ConcurrencyResult] = []
        for threads in thread_counts:
            series.append(
                run_concurrent_benchmark(
                    ConcurrencyConfig(
                        threads=threads,
                        transport=transport,
                        interactions_per_thread=interactions_per_thread,
                        write_fraction=write_fraction,
                        simulated_rpc_latency_seconds=simulated_rpc_latency_seconds,
                        seed=seed,
                        label=f"concurrent-{transport}-{threads}t",
                    )
                )
            )
        results[transport] = series
    return ConcurrentClientsResult(
        thread_counts=list(thread_counts),
        results=results,
        elapsed_seconds=time.time() - started,
    )


@dataclass
class ConcurrentChurnResult:
    """A crash/rejoin cycle applied while K threads drive traffic."""

    baseline: ConcurrencyResult
    churned: ConcurrencyResult
    elapsed_seconds: float = 0.0

    def format_table(self) -> str:
        rows = []
        for label, result in (("steady state", self.baseline), ("crash + rejoin", self.churned)):
            rows.append(
                [
                    label,
                    f"{result.ops_per_second:,.0f}",
                    f"{result.hit_rate:.1%}",
                    f"{result.degraded_lookups}",
                    f"{result.nodes_evicted}",
                    f"{result.errors}",
                ]
            )
        return format_table(
            ["scenario", "ops/sec", "hit rate", "degraded lookups", "evicted", "errors"],
            rows,
            title=(
                f"Concurrent churn: {self.churned.threads} threads on "
                f"{self.churned.transport}, one node crashes and warm-rejoins mid-run"
            ),
        )


def concurrent_churn(
    threads: int = 4,
    transport: str = "socket",
    interactions_per_thread: int = 400,
    simulated_rpc_latency_seconds: float = 4e-4,
    replication_factor: int = 2,
    seed: int = 1,
) -> ConcurrentChurnResult:
    """Crash and warm-rejoin a cache node while K worker threads run.

    The concurrent analogue of :func:`crash_churn`: failure detection,
    threshold eviction, and the warm rejoin's live migration all execute
    *while* worker threads issue transactions, which is exactly the window
    where an unsynchronized cache tier would corrupt state or deadlock.
    With ``replication_factor >= 2`` the surviving replicas keep serving the
    dead node's keys, so reads never observe the crash as an error.
    """
    started = time.time()

    def config(label: str, churn) -> ConcurrencyConfig:
        return ConcurrencyConfig(
            threads=threads,
            transport=transport,
            interactions_per_thread=interactions_per_thread,
            simulated_rpc_latency_seconds=simulated_rpc_latency_seconds,
            replication_factor=replication_factor,
            churn=churn,
            seed=seed,
            label=label,
        )

    baseline = run_concurrent_benchmark(config("concurrent-steady", ()))
    churned = run_concurrent_benchmark(
        config(
            "concurrent-crash-rejoin",
            (
                TimedChurnEvent(0.3, "crash", node="cache0"),
                TimedChurnEvent(0.6, "join", node="cache0"),
            ),
        )
    )
    return ConcurrentChurnResult(
        baseline=baseline,
        churned=churned,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Pipelined clients: the fast wire path, measured without the client GIL
# ----------------------------------------------------------------------
@dataclass
class PipelinedClientsResult:
    """Throughput vs worker processes, per wire path.

    ``results[variant]`` holds one :class:`MultiprocessResult` per entry of
    ``process_counts``.  The four variants cover {legacy pooled, pipelined}
    x {threaded server, event-loop server}:

    * ``"pooled+threaded (pool=threads)"`` — PR 4's benchmark baseline: one
      socket per concurrent RPC, one server thread per socket.
    * ``"pooled+threaded"`` — PR 4's *deployment default*: 4 pooled
      connections per node, so each application server is capped at
      ``4 x nodes`` in-flight RPCs no matter how many worker threads it
      runs.  This is the row the pipelined path must beat.
    * ``"pipelined+eventloop"`` — the fast wire path: one multiplexed
      socket per node (unbounded in-flight), served by the selector loop.
    * ``"pipelined+threaded"`` — the control that shows why the event loop
      exists: the threaded engine serves one mux connection sequentially,
      so every modelled round trip is paid serially (head-of-line).
    """

    process_counts: List[int]
    threads_per_process: int
    results: Dict[str, List[MultiprocessResult]]
    elapsed_seconds: float = 0.0

    def speedup_at(self, processes: int) -> float:
        """Pipelined+eventloop over the pooled deployment default."""
        index = self.process_counts.index(processes)
        baseline = self.results["pooled+threaded"][index].ops_per_second or 1.0
        return self.results["pipelined+eventloop"][index].ops_per_second / baseline

    def format_table(self) -> str:
        rows = []
        for variant, series in self.results.items():
            for result in series:
                rows.append(
                    [
                        variant,
                        f"{result.processes}",
                        f"{result.processes * result.threads_per_process}",
                        f"{result.ops_per_second:,.0f}",
                        f"{result.hit_rate:.1%}",
                        f"{result.errors}",
                    ]
                )
        return format_table(
            ["wire path", "processes", "workers", "ops/sec", "hit rate", "errors"],
            rows,
            title=(
                "Pipelined clients: multi-process wall-clock throughput "
                f"({self.threads_per_process} threads/process, modelled RTT)"
            ),
        )


def pipelined_clients(
    process_counts: Sequence[int] = (1, 2, 4),
    threads_per_process: int = 16,
    interactions_per_thread: int = 25,
    simulated_rpc_latency_seconds: float = 1e-2,
    include_threaded_pipelined: bool = True,
    seed: int = 1,
) -> PipelinedClientsResult:
    """Throughput-vs-processes under {pooled, pipelined} x {threaded, eventloop}.

    Every point forks its worker processes (:func:`run_multiprocess_benchmark`),
    so the curve measures the cache tier — transport discipline and server
    engine — rather than the client GIL.  The modelled LAN round trip is
    deliberately large relative to loopback so the binding constraint is
    in-flight concurrency, which is exactly what the pooled and pipelined
    disciplines differ in: with ``threads_per_process`` workers above the
    pooled cap (``DEFAULT_POOL_SIZE x nodes``), the deployment-default
    pooled transport serializes the excess behind its sockets while the
    pipelined transport keeps every worker's RPC in flight on one socket
    per node.

    ``include_threaded_pipelined=False`` skips the head-of-line control row
    (it pays every modelled round trip serially, so it is the slowest row
    by design and dominates the experiment's wall time).
    """
    started = time.time()
    variants: List[Tuple[str, dict]] = [
        (
            "pooled+threaded (pool=threads)",
            dict(transport="socket", socket_pool_size=threads_per_process),
        ),
        # The deployment-default pool (DEFAULT_POOL_SIZE per node) — what a
        # PR-4 deployment actually runs with, and the row to beat.
        ("pooled+threaded", dict(transport="socket", socket_pool_size=DEFAULT_POOL_SIZE)),
        ("pipelined+eventloop", dict(transport="socket-pipelined")),
    ]
    if include_threaded_pipelined:
        variants.append(
            (
                "pipelined+threaded",
                dict(transport="socket", socket_pipelined=True, server_style="threaded"),
            )
        )
    results: Dict[str, List[MultiprocessResult]] = {}
    for variant, overrides in variants:
        series: List[MultiprocessResult] = []
        for processes in process_counts:
            config = MultiprocessConfig(
                processes=processes,
                threads_per_process=threads_per_process,
                interactions_per_thread=interactions_per_thread,
                simulated_rpc_latency_seconds=simulated_rpc_latency_seconds,
                seed=seed,
                label=f"pipelined-{variant}-{processes}p",
                **overrides,
            )
            series.append(run_multiprocess_benchmark(config))
        results[variant] = series
    return PipelinedClientsResult(
        process_counts=list(process_counts),
        threads_per_process=threads_per_process,
        results=results,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Figures 5-8 re-measured open-loop on the fast wire stack
# ----------------------------------------------------------------------
#: Figure-5 cache-size points re-measured open-loop (paper labels; the
#: in-memory MB points map through ``_cache_bytes``, disk GB through
#: ``_disk_cache_bytes``, and the budget is split across the cache nodes).
OPENLOOP_FIGURE5_CONFIGS: List[Tuple[str, int, float]] = [
    ("in-mem 64MB", _cache_bytes(64), 30.0),
    ("in-mem 512MB", _cache_bytes(512), 30.0),
    ("in-mem 1024MB", _cache_bytes(1024), 30.0),
    ("disk 1GB", _disk_cache_bytes(1), 30.0),
    ("disk 9GB", _disk_cache_bytes(9), 30.0),
]

#: Figure-7 staleness points (seconds) at the 512MB cache label.
OPENLOOP_FIGURE7_STALENESS = [1.0, 30.0, 120.0]

#: Figure-8's four configurations (same labels as :func:`figure8`).
OPENLOOP_FIGURE8_CONFIGS: List[Tuple[str, int, float]] = [
    ("in-mem 512MB / 30s", _cache_bytes(512), 30.0),
    ("in-mem 512MB / 15s", _cache_bytes(512), 15.0),
    ("in-mem 64MB / 30s", _cache_bytes(64), 30.0),
    ("disk 9GB / 30s", _disk_cache_bytes(9), 30.0),
]

#: Offered rates (ops/s) each configuration is measured at.
OPENLOOP_DEFAULT_RATES = [1000.0, 2000.0, 4000.0]

#: p99 SLO (seconds) the capacity model provisions against.
OPENLOOP_P99_SLO_SECONDS = 0.05


@dataclass
class FigureOpenLoopResult:
    """Figures 5-8 re-measured open-loop on socket-pipelined + binary.

    ``points[section]`` (``"figure5"`` … ``"figure8"``) holds one dict per
    (configuration, offered rate): offered rate, achieved goodput, merged
    p50/p95/p99/p99.9 in milliseconds, hit rate, and errors.  Figure 6 is
    the hit-rate view of the Figure 5 runs, as in the closed-loop
    reproduction — same measurements, no re-run.  ``capacity`` is the
    concurrent-user model derived from the 512MB sweep's p99-SLO point.

    Honesty note: the open-loop re-measurement drives the multi-process
    ``pages`` workload (read-only by construction — see
    :class:`~repro.bench.driver.MultiprocessConfig`), so the staleness axis
    (figure7) and the consistency-miss rows (figure8) measure the *wire
    stack's* latency under those deployment settings, not invalidation
    pressure; the cache-size axis does produce genuine capacity misses.
    """

    transport: str
    points: Dict[str, List[Dict[str, object]]]
    capacity: Optional[CapacityModel]
    recorded_path: Optional[str] = None
    elapsed_seconds: float = 0.0

    def format_table(self) -> str:
        rows = []
        for section in ("figure5", "figure6", "figure7", "figure8"):
            for point in self.points.get(section, []):
                rows.append(
                    [
                        section,
                        str(point["configuration"]),
                        f"{point['offered_rate']:,.0f}",
                        f"{point['achieved_goodput']:,.1f}",
                        f"{point['p50_ms']:.2f}",
                        f"{point['p95_ms']:.2f}",
                        f"{point['p99_ms']:.2f}",
                        f"{point['hit_rate']:.1%}",
                    ]
                )
        table = format_table(
            ["figure", "configuration", "offered/s", "achieved/s", "p50 ms", "p95 ms", "p99 ms", "hit rate"],
            rows,
            title=f"Figures 5-8, open-loop on {self.transport}",
        )
        if self.capacity is not None:
            table = table + "\n\n" + self.capacity.format_table()
        return table


def _openloop_points(sweep, configuration: str) -> List[Dict[str, object]]:
    """Flatten one sweep into the per-point dicts BENCH_figures.json stores."""
    return [
        {
            "configuration": configuration,
            "offered_rate": point.offered_rate,
            "achieved_goodput": point.achieved_goodput,
            "p50_ms": point.p50 * 1e3,
            "p95_ms": point.p95 * 1e3,
            "p99_ms": point.p99 * 1e3,
            "p99_9_ms": point.p999 * 1e3,
            "hit_rate": point.hit_rate,
            "errors": point.errors,
        }
        for point in sweep.points
    ]


def figures_openloop(
    settings: Optional[ExperimentSettings] = None,
    *,
    rates: Optional[Sequence[float]] = None,
    processes: int = 2,
    threads_per_process: int = 4,
    cache_nodes: int = 2,
    seconds_per_point: float = 2.0,
    smoke: bool = False,
    record: bool = True,
    path: Optional[str] = None,
) -> FigureOpenLoopResult:
    """Re-measure Figures 5-8 open-loop on the fast wire stack.

    Every configuration runs on ``transport="socket-pipelined"`` with the
    binary codec, driven by the coordinated-omission-safe open-loop
    generator at each offered rate in ``rates`` — so alongside the
    throughput each point reports what the *tail* did at that offered
    load, which the closed-loop figures cannot show.  Results are appended
    to ``BENCH_figures.json`` (sections ``figure5`` … ``figure8`` plus
    ``capacity``) unless ``record=False``.

    ``smoke=True`` shrinks the run to one configuration per figure at one
    rate — enough to validate the emitted document's schema in CI without
    benchmark-grade timings.
    """
    settings = settings or ExperimentSettings.quick()
    started = time.time()
    if rates is None:
        rates = [800.0] if smoke else list(OPENLOOP_DEFAULT_RATES)
    duration = 1.0 if smoke else seconds_per_point

    figure5_configs = OPENLOOP_FIGURE5_CONFIGS[1:2] if smoke else OPENLOOP_FIGURE5_CONFIGS
    figure7_staleness = OPENLOOP_FIGURE7_STALENESS[1:2] if smoke else OPENLOOP_FIGURE7_STALENESS
    figure8_configs = OPENLOOP_FIGURE8_CONFIGS[:1] if smoke else OPENLOOP_FIGURE8_CONFIGS

    def sweep(label: str, cache_bytes: int, staleness: float):
        config = OpenLoopConfig(
            processes=processes,
            threads_per_process=threads_per_process,
            cache_nodes=cache_nodes,
            cache_capacity_bytes_per_node=max(16 * 1024, cache_bytes // cache_nodes),
            staleness=staleness,
            transport="socket-pipelined",
            wire_codec="binary",
            seed=settings.seed,
            label=label,
        )
        return run_rate_sweep(config, rates=rates, seconds_per_point=duration)

    transport = ""
    points: Dict[str, List[Dict[str, object]]] = {}

    figure5_points: List[Dict[str, object]] = []
    capacity: Optional[CapacityModel] = None
    for label, cache_bytes, staleness in figure5_configs:
        result = sweep(f"fig5-openloop-{label}", cache_bytes, staleness)
        transport = result.transport
        figure5_points.extend(_openloop_points(result, label))
        if capacity is None and "512MB" in label:
            capacity = capacity_report(
                result,
                cache_nodes=cache_nodes,
                driver_cores=processes,
                slo_seconds=OPENLOOP_P99_SLO_SECONDS,
            )
    points["figure5"] = figure5_points
    # Figure 6 is the hit-rate view of the same runs (no re-measurement).
    points["figure6"] = [dict(point) for point in figure5_points]

    points["figure7"] = []
    for staleness in figure7_staleness:
        result = sweep(f"fig7-openloop-{staleness:g}s", _cache_bytes(512), staleness)
        points["figure7"].extend(_openloop_points(result, f"512MB / {staleness:g}s"))

    points["figure8"] = []
    for label, cache_bytes, staleness in figure8_configs:
        result = sweep(f"fig8-openloop-{label}", cache_bytes, staleness)
        points["figure8"].extend(_openloop_points(result, label))

    recorded_path: Optional[str] = None
    if record:
        for section in ("figure5", "figure6", "figure7", "figure8"):
            recorded_path = record_figures_benchmark(
                section,
                {"transport": transport, "rates": list(rates), "points": points[section]},
                path=path,
            )
        if capacity is not None:
            recorded_path = record_figures_benchmark(
                "capacity", capacity.to_dict(), path=path
            )
    return FigureOpenLoopResult(
        transport=transport,
        points=points,
        capacity=capacity,
        recorded_path=recorded_path,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Per-core cache nodes: thread-hosted vs process-hosted scaling
# ----------------------------------------------------------------------
#: Node counts swept by :func:`percore_openloop`.
PERCORE_NODE_COUNTS = [1, 2, 4]

#: The two hosting modes compared, as (label, transport) pairs: the same
#: pipelined wire stack in front of nodes that share the coordinator's
#: interpreter vs nodes that each own an OS process (and a core).
PERCORE_HOSTINGS: List[Tuple[str, str]] = [
    ("thread-hosted", "socket-pipelined"),
    ("process-hosted", "socket-process"),
]

#: Cores the machine needs before the process-hosted goodput advantage at
#: 4 nodes is asserted (on fewer cores both modes share the same CPUs and
#: the experiment only documents the curve).
PERCORE_MIN_CORES = 4


@dataclass
class PerCoreOpenLoopResult:
    """Goodput and tail vs node count, thread-hosted vs process-hosted.

    Thread-hosted nodes (``"socket-pipelined"``) share the coordinator's
    interpreter: adding nodes adds ring slices but not serving CPU,
    because every node's codec and mux work contends on one GIL.
    Process-hosted nodes (``"socket-process"``) each own an interpreter,
    so the same machine serves with N cores.  ``results[hosting]`` holds
    one :class:`~repro.bench.loadgen.runner.OpenLoopResult` per entry of
    ``node_counts`` at the same fixed offered rate; on a machine with
    ``PERCORE_MIN_CORES``+ cores the process-hosted goodput at 4 nodes
    should clear the thread-hosted one by ≥1.15x (the CI assertion —
    gated on :attr:`cpu_count` because on fewer cores there is nothing
    for the extra processes to run on).
    """

    offered_rate: float
    node_counts: List[int]
    results: Dict[str, List["OpenLoopResult"]]
    cpu_count: int
    recorded_path: Optional[str] = None
    elapsed_seconds: float = 0.0

    def goodput(self, hosting: str, nodes: int) -> float:
        index = self.node_counts.index(nodes)
        return self.results[hosting][index].achieved_goodput

    def process_speedup_at(self, nodes: int) -> float:
        """Process-hosted goodput over thread-hosted at ``nodes`` nodes."""
        baseline = self.goodput("thread-hosted", nodes) or 1.0
        return self.goodput("process-hosted", nodes) / baseline

    @property
    def scaling_assertable(self) -> bool:
        """Whether this machine can even show per-core scaling."""
        return self.cpu_count >= PERCORE_MIN_CORES and max(self.node_counts) >= 4

    def format_table(self) -> str:
        rows = []
        for hosting, series in self.results.items():
            for nodes, result in zip(self.node_counts, series):
                p = result.percentiles((50.0, 99.0))
                q99 = result.queue_wait_histogram.percentile(99.0)
                s99 = result.service_histogram.percentile(99.0)
                rows.append(
                    [
                        hosting,
                        f"{nodes}",
                        f"{result.achieved_goodput:,.1f}",
                        f"{p[50.0] * 1e3:.2f}",
                        f"{p[99.0] * 1e3:.2f}",
                        f"{q99 * 1e3:.2f}",
                        f"{s99 * 1e3:.2f}",
                        f"{result.hit_rate:.1%}",
                    ]
                )
        return format_table(
            ["hosting", "nodes", "goodput/s", "p50 ms", "p99 ms", "q-wait p99", "service p99", "hit rate"],
            rows,
            title=(
                f"Per-core cache nodes: {self.offered_rate:,.0f} ops/s offered, "
                f"{self.cpu_count} cores"
            ),
        )


def percore_openloop(
    offered_rate: float = 4000.0,
    node_counts: Optional[Sequence[int]] = None,
    *,
    processes: int = 2,
    threads_per_process: int = 8,
    seconds_per_point: float = 2.0,
    cpu_pinning: bool = True,
    smoke: bool = False,
    record: bool = True,
    path: Optional[str] = None,
) -> PerCoreOpenLoopResult:
    """Sweep node count x hosting mode at one fixed offered rate.

    Every cell is the same open-loop measurement
    (:func:`~repro.bench.loadgen.runner.run_openloop_benchmark`: forked
    driver processes, Poisson arrivals, CO-safe latency) with only the
    cache tier varied: ``cache_nodes`` in ``node_counts``, hosted either
    as threads of the coordinator (``"socket-pipelined"``) or as one OS
    process per node (``"socket-process"``, pinned one-per-core when
    ``cpu_pinning``).  The modelled RPC latency is zero so the binding
    resource is serving *CPU* — exactly the resource the process hosts
    multiply and the thread hosts share.

    The full curve (goodput, p50/p99, queue-wait/service split per cell)
    is appended to the ``percore`` section of ``BENCH_wire.json`` unless
    ``record=False``.  ``smoke=True`` shrinks to one node count at a low
    rate — schema validation, not measurement.
    """
    import os as _os

    from repro.bench.loadgen.runner import run_openloop_benchmark
    from repro.bench.perflog import record_wire_benchmark

    started = time.time()
    if node_counts is None:
        node_counts = [1] if smoke else list(PERCORE_NODE_COUNTS)
    if smoke:
        offered_rate = min(offered_rate, 400.0)
        processes, threads_per_process = 1, 2
        seconds_per_point = min(seconds_per_point, 1.0)
    counts = [int(count) for count in node_counts]
    cpu_count = _os.cpu_count() or 1

    results: Dict[str, List["OpenLoopResult"]] = {}
    points: List[Dict[str, object]] = []
    for hosting, transport in PERCORE_HOSTINGS:
        series: List["OpenLoopResult"] = []
        for nodes in counts:
            config = OpenLoopConfig(
                offered_rate=offered_rate,
                total_ops=max(1, int(offered_rate * seconds_per_point)),
                processes=processes,
                threads_per_process=threads_per_process,
                transport=transport,
                cache_nodes=nodes,
                simulated_rpc_latency_seconds=0.0,
                wire_codec="binary",
                cpu_pinning=(cpu_pinning and transport == "socket-process"),
                label=f"percore-{hosting}-{nodes}n",
            )
            result = run_openloop_benchmark(config)
            series.append(result)
            p = result.percentiles((50.0, 99.0))
            points.append(
                {
                    "hosting": hosting,
                    "transport": result.transport,
                    "nodes": nodes,
                    "offered_rate": offered_rate,
                    "achieved_goodput": result.achieved_goodput,
                    "p50_ms": p[50.0] * 1e3,
                    "p99_ms": p[99.0] * 1e3,
                    "queue_wait_p99_ms": result.queue_wait_histogram.percentile(99.0) * 1e3,
                    "service_p99_ms": result.service_histogram.percentile(99.0) * 1e3,
                    "hit_rate": result.hit_rate,
                    "errors": result.errors,
                }
            )
        results[hosting] = series

    outcome = PerCoreOpenLoopResult(
        offered_rate=offered_rate,
        node_counts=counts,
        results=results,
        cpu_count=cpu_count,
    )
    if record:
        data: Dict[str, object] = {
            "offered_rate": offered_rate,
            "cpu_count": cpu_count,
            "node_counts": counts,
            "points": points,
        }
        if 4 in counts:
            data["process_speedup_at_4_nodes"] = outcome.process_speedup_at(4)
        outcome.recorded_path = record_wire_benchmark("percore", data, path=path)
    outcome.elapsed_seconds = time.time() - started
    return outcome


# ----------------------------------------------------------------------
# Repair interference: synchronous sweep vs budgeted maintenance plane
# ----------------------------------------------------------------------
@dataclass
class RepairOpenLoopRun:
    """One measured scenario of :func:`repair_openloop`."""

    label: str
    stats: OpenLoopStats
    repaired: int
    repair_seconds: float
    budget_deferrals: int
    budget_windows: int

    @property
    def p50(self) -> float:
        return self.stats.histogram.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.stats.histogram.percentile(99.0)


@dataclass
class RepairOpenLoopResult:
    """Open-loop tail latency while a replica repair runs mid-measurement.

    Three runs over identically damaged clusters: no repair at all (the
    baseline tail), the old synchronous sweep (whole-store extract pages
    fired at 30% of the schedule), and the maintenance plane pumping the
    same repair as small chunks under an op/byte budget.  The claim under
    test: the budgeted plane re-replicates everything the sweep does while
    keeping the foreground p99 near the baseline, where the synchronous
    sweep spikes it.
    """

    runs: List[RepairOpenLoopRun]
    offered_rate: float
    keys: int
    damaged: int
    transport: str
    elapsed_seconds: float = 0.0

    def run_named(self, label: str) -> RepairOpenLoopRun:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(label)

    def p99_ratio(self, label: str) -> float:
        baseline = self.run_named("no repair").p99
        if baseline <= 0.0:
            return 0.0
        return self.run_named(label).p99 / baseline

    def format_table(self) -> str:
        rows = []
        for run in self.runs:
            ratio = self.p99_ratio(run.label)
            rows.append(
                [
                    run.label,
                    f"{run.stats.achieved_rate:,.0f}",
                    f"{run.p50 * 1e3:.2f} ms",
                    f"{run.p99 * 1e3:.2f} ms",
                    f"{ratio:.2f}x",
                    f"{run.stats.errors}",
                    f"{run.repaired}",
                    f"{run.repair_seconds:.2f}s",
                    f"{run.budget_deferrals}",
                ]
            )
        return format_table(
            [
                "scenario", "goodput/s", "p50", "p99", "p99 vs baseline",
                "errors", "repaired", "repair time", "deferrals",
            ],
            rows,
            title=(
                f"Repair under open-loop load: {self.offered_rate:,.0f} ops/s "
                f"Poisson on {self.transport}, {self.damaged} of {self.keys} "
                "entries lost on one replica, repair fired mid-run"
            ),
        )


def repair_openloop(
    rate: float = 1200.0,
    seconds: float = 4.0,
    threads: int = 8,
    keys: int = 2400,
    value_bytes: int = 2048,
    transport: str = "socket-pipelined",
    seed: int = 11,
    trials: int = 3,
    smoke: bool = False,
) -> RepairOpenLoopResult:
    """Measure repair interference with the open-loop generator.

    Each scenario gets a fresh 3-node replicated deployment on the fast
    wire stack, warmed with ``keys`` entries of ``value_bytes`` each, then
    damaged by discarding half of one replica's keys.  A seeded Poisson
    schedule drives ``cluster.probe`` lookups from ``threads`` workers in
    open-loop mode (queueing delay is charged to the tail), and at 30% of
    the run the repair fires:

    * ``synchronous sweep`` — the pre-plane behaviour, reproduced by a
      whole-store ``migration_chunk_size`` so the sweep ships its pages as
      a few giant lock-holding RPCs back to back;
    * ``budgeted plane`` — ``background_maintenance`` with a small op/byte
      budget on short real-time windows; a pumper thread trickles the same
      repair out as 32-entry chunks.

    Each scenario runs ``trials`` times and reports its best (lowest-p99)
    trial: scheduler noise on a shared machine only ever *adds* latency, so
    the min across trials isolates the systematic interference of the
    repair itself from jitter that would otherwise dominate a 1%-tail over
    a few thousand samples.

    ``smoke=True`` shrinks the run for CI (structure, not numbers).
    """
    from repro.clock import SystemClock
    from repro.deployment import TxCacheDeployment
    from repro.interval import Interval

    started = time.time()
    if smoke:
        rate, seconds, threads = 400.0, 1.5, 4
        keys, value_bytes, trials = 400, 512, 1
    arrival_times = ArrivalSchedule(rate, kind="poisson", seed=seed).times(
        int(rate * seconds)
    )
    trigger = seconds * 0.3
    payload = "x" * value_bytes
    victim = "cache1"
    damaged_box = [0]

    def measure(label: str, mode: str) -> RepairOpenLoopRun:
        with TxCacheDeployment(
            clock=SystemClock(),
            cache_nodes=3,
            transport=transport,
            wire_codec="binary",
            replication_factor=2,
            migration_chunk_size=(keys if mode == "sync" else 32),
            background_maintenance=(mode == "budgeted"),
            maintenance_ops_per_interval=8,
            maintenance_bytes_per_interval=192 << 10,
            maintenance_interval_seconds=0.05,
        ) as deployment:
            cluster = deployment.cache
            membership = deployment.membership
            for i in range(keys):
                cluster.put(f"key{i}", payload, Interval(1, None))
            held = cluster.node_keys(victim)
            lost = held[: len(held) // 2]
            cluster.discard_keys(victim, lost)
            damaged_box[0] = len(lost)

            repair_span = [0.0]
            stop = threading.Event()

            def fire_repair() -> None:
                if stop.wait(trigger):
                    return
                repair_started = time.perf_counter()
                membership.repair()  # sync: blocks; budgeted: submits
                plane = membership.plane
                while plane is not None and not plane.idle and not stop.is_set():
                    # One chunk per pump: the budget caps each window's
                    # total, the pacing keeps chunks from bursting
                    # back-to-back within it.
                    plane.pump(max_chunks=1)
                    time.sleep(0.01)
                repair_span[0] = time.perf_counter() - repair_started

            repair_thread = None
            if mode != "none":
                repair_thread = threading.Thread(target=fire_repair)
                repair_thread.start()

            def make_executor(thread_index: int):
                rng = random.Random(seed * 1000 + thread_index)

                def execute(op_index: int) -> object:
                    return cluster.probe(f"key{rng.randrange(keys)}", 0, 10)

                return execute

            stats = run_open_loop(arrival_times, make_executor, threads=threads)
            if repair_thread is not None:
                repair_thread.join(timeout=30)
                if repair_thread.is_alive():
                    stop.set()
                    repair_thread.join(timeout=5)
            plane = membership.plane
            return RepairOpenLoopRun(
                label=label,
                stats=stats,
                repaired=membership.stats.entries_re_replicated,
                repair_seconds=repair_span[0],
                budget_deferrals=(plane.stats.budget_deferrals if plane else 0),
                budget_windows=(
                    plane.budget.windows if plane and plane.budget else 0
                ),
            )

    def best_of(label: str, mode: str) -> RepairOpenLoopRun:
        return min(
            (measure(label, mode) for _ in range(max(1, trials))),
            key=lambda run: run.p99,
        )

    runs = [
        best_of("no repair", "none"),
        best_of("synchronous sweep", "sync"),
        best_of("budgeted plane", "budgeted"),
    ]
    return RepairOpenLoopResult(
        runs=runs,
        offered_rate=rate,
        keys=keys,
        damaged=damaged_box[0],
        transport=transport,
        elapsed_seconds=time.time() - started,
    )


# ----------------------------------------------------------------------
# Chaos recovery: SIGKILL a node mid-run, supervisor on vs off
# ----------------------------------------------------------------------
@dataclass
class ChaosOpenLoopRun:
    """One measured scenario of :func:`chaos_openloop`."""

    label: str
    stats: OpenLoopStats
    #: Hit rate over the samples completed before the kill fired.
    baseline_hit_rate: float
    #: Kill → first bin whose hit rate is back to >= 90% of baseline
    #: (negative: never restored within the run).
    recovery_seconds: float
    #: Total width of post-kill bins whose service p99 exceeded 3x the
    #: pre-kill service p99 — how long the tail stayed visibly disturbed.
    p99_spike_seconds: float
    #: Hit rate over the last second of the run.
    final_hit_rate: float
    degraded_lookups: int
    consistency_violations: int
    respawns: int
    circuit_breaker_trips: int
    entries_rewarmed: int
    housekeeping_errors: int

    @property
    def p50(self) -> float:
        return self.stats.histogram.percentile(50.0)

    @property
    def p99(self) -> float:
        return self.stats.histogram.percentile(99.0)

    @property
    def restored(self) -> bool:
        return self.recovery_seconds >= 0.0


@dataclass
class ChaosOpenLoopResult:
    """Open-loop recovery measurement around a mid-run SIGKILL.

    Two runs over identical process-hosted replicated deployments under
    the same Poisson schedule: at 30% of the run one node's OS process is
    SIGKILLed (no shutdown, no eviction — routing still points at the
    corpse).  ``supervisor off`` shows the pre-supervision behaviour: the
    ring heals around the corpse but stays a node short, so the steady
    hit rate recovers only as far as the surviving replicas reach.
    ``supervisor on`` must detect the death, respawn the child, rejoin it
    over gossip, and re-warm it through the budgeted maintenance plane —
    restoring the hit rate to >= 90% of the pre-kill baseline with no
    operator action, zero consistency violations, and zero degraded reads
    at replication factor 2.
    """

    runs: List[ChaosOpenLoopRun]
    offered_rate: float
    keys: int
    transport: str
    kill_at_seconds: float
    bin_seconds: float
    recorded_path: Optional[str] = None
    elapsed_seconds: float = 0.0

    def run_named(self, label: str) -> ChaosOpenLoopRun:
        for run in self.runs:
            if run.label == label:
                return run
        raise KeyError(label)

    def format_table(self) -> str:
        rows = []
        for run in self.runs:
            rows.append(
                [
                    run.label,
                    f"{run.stats.achieved_rate:,.0f}",
                    f"{run.p99 * 1e3:.2f} ms",
                    f"{run.baseline_hit_rate:.1%}",
                    (
                        f"{run.recovery_seconds:.2f}s"
                        if run.restored
                        else "never"
                    ),
                    f"{run.p99_spike_seconds:.2f}s",
                    f"{run.final_hit_rate:.1%}",
                    f"{run.respawns}",
                    f"{run.degraded_lookups}",
                    f"{run.consistency_violations}",
                ]
            )
        return format_table(
            [
                "scenario", "goodput/s", "p99", "hit rate pre-kill",
                "hit rate restored in", "p99 spike width", "hit rate end",
                "respawns", "degraded", "violations",
            ],
            rows,
            title=(
                f"Chaos recovery: SIGKILL one of 3 process-hosted nodes at "
                f"{self.kill_at_seconds:.1f}s under {self.offered_rate:,.0f} "
                "ops/s Poisson (R=2, gossip, budgeted re-warm)"
            ),
        )


def chaos_openloop(
    rate: float = 1000.0,
    seconds: float = 6.0,
    threads: int = 8,
    keys: int = 2000,
    value_bytes: int = 512,
    seed: int = 13,
    bin_seconds: float = 0.25,
    smoke: bool = False,
    record: bool = True,
    path: Optional[str] = None,
) -> ChaosOpenLoopResult:
    """Measure crash recovery under open-loop load, supervisor on vs off.

    Each scenario warms a 3-node ``socket-process`` deployment (R=2,
    gossip, budgeted maintenance) with ``keys`` entries whose values
    encode their key (an inline one-snapshot check: a hit whose value
    names a different key is a consistency violation), then drives seeded
    Poisson lookups from ``threads`` workers.  At 30% of the run a chaos
    thread SIGKILLs ``cache1``'s OS process — no shutdown handshake, no
    eviction, exactly an OOM kill — and from then on pumps
    ``housekeeping()`` the way a deployment timer would.  Per-sample
    (completion time, hit, service time) records are binned to measure
    how long the hit rate takes to return to 90% of its pre-kill baseline
    and how wide the service-p99 spike is.

    The result is appended to the ``recovery`` section of
    ``BENCH_wire.json``.  ``smoke=True`` shrinks the run for CI (schema,
    not numbers).
    """
    from repro.clock import SystemClock
    from repro.deployment import TxCacheDeployment
    from repro.interval import Interval

    started = time.time()
    if smoke:
        rate, seconds, threads = 300.0, 3.0, 4
        keys, value_bytes = 300, 256
    arrival_times = ArrivalSchedule(rate, kind="poisson", seed=seed).times(
        int(rate * seconds)
    )
    kill_at = seconds * 0.3
    payload = "x" * value_bytes
    victim = "cache1"

    def measure(label: str, supervised: bool) -> ChaosOpenLoopRun:
        with TxCacheDeployment(
            clock=SystemClock(),
            cache_nodes=3,
            transport="socket-process",
            wire_codec="binary",
            replication_factor=2,
            failure_threshold=2,
            rpc_timeout_seconds=1.0,
            gossip=True,
            gossip_suspect_seconds=0.3,
            gossip_confirm_seconds=0.6,
            background_maintenance=True,
            maintenance_ops_per_interval=128,
            maintenance_bytes_per_interval=2 << 20,
            maintenance_interval_seconds=0.05,
            supervision=supervised,
            supervisor_backoff_base_seconds=0.05,
        ) as deployment:
            cluster = deployment.cache
            for i in range(keys):
                cluster.put(f"key{i}", f"{i}:{payload}", Interval(1, None))

            samples: List[List[tuple]] = [[] for _ in range(threads)]
            violations = [0] * threads
            housekeeping_errors = [0]
            kill_box = [0.0]
            stop = threading.Event()

            def chaos() -> None:
                if stop.wait(kill_at):
                    return
                host = cluster.processes.get(victim)
                if host is not None:
                    host.kill()
                kill_box[0] = time.perf_counter()
                # From here on, play the deployment's periodic timer: the
                # recovery must come out of ordinary housekeeping rounds,
                # not out of anything this harness does specially.
                while not stop.is_set():
                    try:
                        deployment.housekeeping()
                    except Exception:  # noqa: BLE001 - counted, loop continues
                        housekeeping_errors[0] += 1
                    stop.wait(0.01)

            def make_executor(thread_index: int):
                rng = random.Random(seed * 1000 + thread_index)
                bucket = samples[thread_index]

                def execute(op_index: int) -> object:
                    i = rng.randrange(keys)
                    issued = time.perf_counter()
                    result = cluster.lookup(f"key{i}", 1, 1)
                    done = time.perf_counter()
                    hit = bool(result.hit)
                    if hit and not str(result.value).startswith(f"{i}:"):
                        violations[thread_index] += 1
                    bucket.append((done, hit, done - issued))
                    return result

                return execute

            chaos_thread = threading.Thread(target=chaos)
            chaos_thread.start()
            run_started = time.perf_counter()
            stats = run_open_loop(arrival_times, make_executor, threads=threads)
            stop.set()
            chaos_thread.join(timeout=10)

            merged = sorted(
                (t - run_started, hit, service)
                for bucket in samples
                for (t, hit, service) in bucket
            )
            kill_rel = (
                kill_box[0] - run_started if kill_box[0] > 0.0 else kill_at
            )
            pre = [(hit, service) for (t, hit, service) in merged if t < kill_rel]
            baseline_hits = sum(1 for hit, _ in pre if hit)
            baseline_hit_rate = baseline_hits / len(pre) if pre else 0.0
            baseline_service = sorted(service for _, service in pre)
            baseline_p99 = (
                baseline_service[int(0.99 * (len(baseline_service) - 1))]
                if baseline_service
                else 0.0
            )

            # Bin the post-kill tail of the run.
            bins: Dict[int, List[tuple]] = {}
            for t, hit, service in merged:
                if t >= kill_rel:
                    bins.setdefault(int((t - kill_rel) / bin_seconds), []).append(
                        (hit, service)
                    )
            recovery_seconds = -1.0
            spike_bins = 0
            for index in sorted(bins):
                entries = bins[index]
                if len(entries) < 5:
                    continue
                hit_rate = sum(1 for hit, _ in entries if hit) / len(entries)
                services = sorted(service for _, service in entries)
                bin_p99 = services[int(0.99 * (len(services) - 1))]
                if baseline_p99 > 0.0 and bin_p99 > 3.0 * baseline_p99:
                    spike_bins += 1
                if (
                    recovery_seconds < 0.0
                    and baseline_hit_rate > 0.0
                    and hit_rate >= 0.9 * baseline_hit_rate
                ):
                    recovery_seconds = (index + 1) * bin_seconds
            tail_start = merged[-1][0] - 1.0 if merged else 0.0
            tail = [(hit, service) for (t, hit, service) in merged if t >= tail_start]
            final_hit_rate = (
                sum(1 for hit, _ in tail if hit) / len(tail) if tail else 0.0
            )

            supervisor = deployment.supervisor
            return ChaosOpenLoopRun(
                label=label,
                stats=stats,
                baseline_hit_rate=baseline_hit_rate,
                recovery_seconds=recovery_seconds,
                p99_spike_seconds=spike_bins * bin_seconds,
                final_hit_rate=final_hit_rate,
                degraded_lookups=cluster.health.degraded_lookups,
                consistency_violations=sum(violations),
                respawns=(supervisor.stats.respawns if supervisor else 0),
                circuit_breaker_trips=(
                    supervisor.stats.circuit_breaker_trips if supervisor else 0
                ),
                entries_rewarmed=deployment.membership.stats.entries_rewarmed,
                housekeeping_errors=housekeeping_errors[0],
            )

    runs = [
        measure("supervisor off", False),
        measure("supervisor on", True),
    ]
    outcome = ChaosOpenLoopResult(
        runs=runs,
        offered_rate=rate,
        keys=keys,
        transport="socket-process",
        kill_at_seconds=kill_at,
        bin_seconds=bin_seconds,
    )
    if record:
        from repro.bench.perflog import record_wire_benchmark

        data: Dict[str, object] = {
            "offered_rate": rate,
            "keys": keys,
            "transport": "socket-process",
            "kill_at_seconds": kill_at,
            "bin_seconds": bin_seconds,
            "runs": [
                {
                    "label": run.label,
                    "achieved_goodput": run.stats.achieved_rate,
                    "p50_ms": run.p50 * 1e3,
                    "p99_ms": run.p99 * 1e3,
                    "baseline_hit_rate": run.baseline_hit_rate,
                    "recovery_seconds": run.recovery_seconds,
                    "restored": run.restored,
                    "p99_spike_seconds": run.p99_spike_seconds,
                    "final_hit_rate": run.final_hit_rate,
                    "degraded_lookups": run.degraded_lookups,
                    "consistency_violations": run.consistency_violations,
                    "respawns": run.respawns,
                    "circuit_breaker_trips": run.circuit_breaker_trips,
                    "entries_rewarmed": run.entries_rewarmed,
                    "errors": run.stats.errors,
                }
                for run in runs
            ],
        }
        outcome.recorded_path = record_wire_benchmark("recovery", data, path=path)
    outcome.elapsed_seconds = time.time() - started
    return outcome


# ----------------------------------------------------------------------
# Section 8.1: validity-tracking overhead
# ----------------------------------------------------------------------
@dataclass
class OverheadResult:
    """Per-query latency with and without validity tracking."""

    stock_seconds_per_query: float
    modified_seconds_per_query: float
    queries: int

    @property
    def overhead_fraction(self) -> float:
        if self.stock_seconds_per_query == 0:
            return 0.0
        return (
            self.modified_seconds_per_query - self.stock_seconds_per_query
        ) / self.stock_seconds_per_query

    def format_table(self) -> str:
        rows = [
            ["stock (no validity tracking)", f"{self.stock_seconds_per_query * 1e6:.1f} us"],
            ["modified (validity + tags)", f"{self.modified_seconds_per_query * 1e6:.1f} us"],
            ["overhead", f"{self.overhead_fraction:+.1%}"],
        ]
        return format_table(
            ["database", "time per query"],
            rows,
            title="Section 8.1: validity-tracking overhead (microbenchmark)",
        )


def validity_tracking_overhead(
    queries: int = 3000, rows: int = 2000, seed: int = 3
) -> OverheadResult:
    """Measure the executor with and without validity tracking.

    The paper found no observable throughput difference between stock
    PostgreSQL and the modified version; this microbenchmark compares the
    reproduction's executor in the same two modes over an identical query
    stream.
    """
    import random

    def build(track_validity: bool) -> Database:
        database = Database(clock=ManualClock(), track_validity=track_validity)
        create_rubis_schema(database)
        populate_database(database, IN_MEMORY_CONFIG.scaled(400), seed=seed)
        return database

    def run(database: Database) -> float:
        rng = random.Random(seed)
        item_ids = [
            row.values["id"] for row in database.table("items").scan_versions()
        ]
        user_ids = [
            row.values["id"] for row in database.table("users").scan_versions()
        ]
        transaction = database.begin_ro()
        start = time.perf_counter()
        for index in range(queries):
            if index % 3 == 0:
                transaction.query(Select("items", Eq("id", rng.choice(item_ids))))
            elif index % 3 == 1:
                transaction.query(Select("users", Eq("id", rng.choice(user_ids))))
            else:
                transaction.query(Select("bids", Eq("item_id", rng.choice(item_ids))))
        elapsed = time.perf_counter() - start
        transaction.commit()
        return elapsed / queries

    stock = run(build(track_validity=False))
    modified = run(build(track_validity=True))
    return OverheadResult(
        stock_seconds_per_query=stock,
        modified_seconds_per_query=modified,
        queries=queries,
    )
