"""Persisted benchmark numbers (the perf trajectory across PRs).

The benchmarks don't just assert their speedups — they record the
measured numbers in ``BENCH_*.json`` files at the repository root so the
performance trajectory is tracked in version control.  Each benchmark
owns one *section* of a file (codec, RPC round trip, multiprocess
throughput, the open-loop figure sweeps); a section is a **timestamped
entry list**, and re-running a benchmark *appends* a new entry instead of
overwriting the old one, so the files accumulate a trajectory across PRs
rather than losing history on every rerun.  Schema v2::

    {
      "schema_version": 2,
      "sections": {
        "codec": {"entries": [{"recorded_at": "2026-...Z", "data": {...}},
                              ...]},
        ...
      }
    }

Legacy v1 files (a flat ``{section: data}`` mapping) are migrated on
load: each existing section becomes the first entry of its entry list.
The original measurement time was never recorded, so migrated entries
get a **backfilled** ``recorded_at`` (the file's mtime — an upper bound
on when the measurement happened) and carry ``"migrated": true`` so a
reader can tell a backfilled timestamp from a measured one; nothing in
the document is ever timestamped ``null``.  Entry lists are bounded
(``history_limit``, oldest dropped first) so the committed files stay
reviewable.

Files are written atomically (temp file + ``os.replace``) because the
benchmark suites may run under ``pytest -n``-style parallelism; last
writer wins per append, which is fine for measurements.  Set
``REPRO_BENCH_DIR`` to redirect the output (CI artifacts, scratch runs).
"""

from __future__ import annotations

import datetime
import json
import os
import tempfile
from typing import Any, Dict, List, Optional

__all__ = [
    "BENCH_FIGURES_FILENAME",
    "BENCH_WIRE_FILENAME",
    "SCHEMA_VERSION",
    "benchmark_path",
    "latest",
    "load_benchmark",
    "record_benchmark",
    "record_figures_benchmark",
    "record_wire_benchmark",
    "validate_figures_document",
    "validate_recovery_section",
    "wire_benchmark_path",
]

SCHEMA_VERSION = 2

BENCH_WIRE_FILENAME = "BENCH_wire.json"
BENCH_FIGURES_FILENAME = "BENCH_figures.json"

#: Entries kept per section; the oldest fall off so committed files stay small.
DEFAULT_HISTORY_LIMIT = 20

#: Sections a figures document must carry, and what each entry must report.
FIGURE_SECTIONS = ("figure5", "figure6", "figure7", "figure8")
FIGURE_ENTRY_KEYS = ("configuration", "offered_rate", "achieved_goodput", "p50_ms", "p95_ms", "p99_ms")
RECOVERY_RUN_KEYS = (
    "label", "achieved_goodput", "p99_ms", "baseline_hit_rate",
    "recovery_seconds", "restored", "p99_spike_seconds",
    "consistency_violations", "degraded_lookups", "respawns",
)


def benchmark_path(filename: str, path: Optional[str] = None) -> str:
    """Resolve where a ``BENCH_*.json`` file lives.

    Precedence: explicit ``path`` argument, then the ``REPRO_BENCH_DIR``
    environment variable, then the repository root (three directories up
    from this file: ``src/repro/bench/`` -> repo).
    """
    if path is not None:
        return path
    env_dir = os.environ.get("REPRO_BENCH_DIR")
    if env_dir:
        return os.path.join(env_dir, filename)
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo_root, filename)


def wire_benchmark_path(path: Optional[str] = None) -> str:
    """Where ``BENCH_wire.json`` lives (see :func:`benchmark_path`)."""
    return benchmark_path(BENCH_WIRE_FILENAME, path)


def _migrate(loaded: Any) -> Dict[str, Any]:
    """Normalize any on-disk form to a v2 document (never raises)."""
    if not isinstance(loaded, dict):
        return {"schema_version": SCHEMA_VERSION, "sections": {}}
    if loaded.get("schema_version") == SCHEMA_VERSION and isinstance(
        loaded.get("sections"), dict
    ):
        return loaded
    # v1: a flat {section: data} mapping with no schema marker.  Wrap each
    # section's data as the first history entry; the timestamp is
    # backfilled by the caller (load_benchmark), which knows the file.
    sections: Dict[str, Any] = {}
    for section, data in loaded.items():
        if section == "schema_version":
            continue
        sections[section] = {"entries": [{"recorded_at": None, "data": data}]}
    return {"schema_version": SCHEMA_VERSION, "sections": sections}


def _backfill_timestamps(document: Dict[str, Any], recorded_at: str) -> Dict[str, Any]:
    """Replace any ``recorded_at: None`` with a backfilled timestamp.

    Entries migrated from v1 (and v2 files written before this fix) carry
    no measurement time.  They are stamped with ``recorded_at`` — the
    file's mtime, an upper bound on when the measurement happened — plus
    ``"migrated": true`` so a backfilled timestamp is never mistaken for
    a measured one.  The backfill persists on the next append.
    """
    for section_doc in document.get("sections", {}).values():
        if not isinstance(section_doc, dict):
            continue
        for entry in section_doc.get("entries", []):
            if isinstance(entry, dict) and entry.get("recorded_at") is None:
                entry["recorded_at"] = recorded_at
                entry["migrated"] = True
    return document


def load_benchmark(filename: str, path: Optional[str] = None) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` document, migrated to schema v2.

    A missing or unreadable file yields an empty v2 document — the
    benchmarks that append to it must not crash on first run.
    """
    target = benchmark_path(filename, path)
    try:
        with open(target, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        loaded = None
    try:
        mtime = os.path.getmtime(target)
        fallback = (
            datetime.datetime.fromtimestamp(mtime, datetime.timezone.utc)
            .replace(microsecond=0)
            .isoformat()
            .replace("+00:00", "Z")
        )
    except OSError:
        fallback = _utc_now_iso()
    return _backfill_timestamps(_migrate(loaded), fallback)


def latest(document: Dict[str, Any], section: str) -> Optional[Dict[str, Any]]:
    """The newest entry's ``data`` for ``section``, or ``None``."""
    entries = document.get("sections", {}).get(section, {}).get("entries", [])
    return entries[-1]["data"] if entries else None


def _utc_now_iso() -> str:
    return (
        datetime.datetime.now(datetime.timezone.utc)
        .replace(microsecond=0)
        .isoformat()
        .replace("+00:00", "Z")
    )


def _atomic_write(target: str, document: Dict[str, Any]) -> None:
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".bench_", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def record_benchmark(
    section: str,
    data: Dict[str, Any],
    *,
    filename: str,
    path: Optional[str] = None,
    history_limit: int = DEFAULT_HISTORY_LIMIT,
) -> str:
    """Append a timestamped entry to ``section`` of a ``BENCH_*`` file.

    Read-migrate-append-write with an atomic replace; other sections and
    the section's prior entries are preserved (bounded by
    ``history_limit``, oldest dropped).  Returns the path written.
    """
    target = benchmark_path(filename, path)
    document = load_benchmark(filename, path)
    section_doc = document["sections"].setdefault(section, {"entries": []})
    entries: List[Dict[str, Any]] = section_doc.setdefault("entries", [])
    entries.append({"recorded_at": _utc_now_iso(), "data": data})
    if history_limit > 0 and len(entries) > history_limit:
        del entries[: len(entries) - history_limit]
    _atomic_write(target, document)
    return target


def record_wire_benchmark(
    section: str, data: Dict[str, Any], path: Optional[str] = None
) -> str:
    """Append ``data`` to ``section`` of ``BENCH_wire.json`` (see above)."""
    return record_benchmark(section, data, filename=BENCH_WIRE_FILENAME, path=path)


def record_figures_benchmark(
    section: str, data: Dict[str, Any], path: Optional[str] = None
) -> str:
    """Append ``data`` to ``section`` of ``BENCH_figures.json``."""
    return record_benchmark(section, data, filename=BENCH_FIGURES_FILENAME, path=path)


def validate_figures_document(document: Dict[str, Any]) -> List[str]:
    """Schema-check a figures document; returns problems (empty = valid).

    A valid document is schema v2 and carries every figure section
    (``figure5`` … ``figure8``); each section's newest entry holds a list
    of measured points under ``"points"``, and every point reports the
    configuration plus offered rate, achieved goodput, and p50/p95/p99
    (milliseconds) — the acceptance currency of the open-loop re-measurement.
    """
    problems: List[str] = []
    if document.get("schema_version") != SCHEMA_VERSION:
        problems.append(
            f"schema_version is {document.get('schema_version')!r}, expected {SCHEMA_VERSION}"
        )
    sections = document.get("sections")
    if not isinstance(sections, dict):
        return problems + ["document has no sections mapping"]
    for section in FIGURE_SECTIONS:
        data = latest(document, section)
        if data is None:
            problems.append(f"missing section {section!r}")
            continue
        points = data.get("points")
        if not isinstance(points, list) or not points:
            problems.append(f"section {section!r}: no measured points")
            continue
        for position, point in enumerate(points):
            if not isinstance(point, dict):
                problems.append(f"section {section!r} point {position}: not an object")
                continue
            for key in FIGURE_ENTRY_KEYS:
                if key not in point:
                    problems.append(f"section {section!r} point {position}: missing {key!r}")
    return problems


def validate_recovery_section(document: Dict[str, Any]) -> List[str]:
    """Schema-check the chaos-recovery section; returns problems.

    A valid ``recovery`` section's newest entry describes one
    :func:`repro.bench.experiments.chaos_openloop` measurement: the kill
    configuration plus one run per scenario (supervisor off and on), each
    reporting goodput, tail latency, the pre-kill hit-rate baseline, the
    time to restore it, and the safety counters (consistency violations,
    degraded reads) the acceptance gates on.
    """
    problems: List[str] = []
    data = latest(document, "recovery")
    if data is None:
        return ["missing section 'recovery'"]
    for key in ("offered_rate", "kill_at_seconds", "bin_seconds", "transport"):
        if key not in data:
            problems.append(f"section 'recovery': missing {key!r}")
    runs = data.get("runs")
    if not isinstance(runs, list) or not runs:
        return problems + ["section 'recovery': no runs"]
    labels = set()
    for position, run in enumerate(runs):
        if not isinstance(run, dict):
            problems.append(f"section 'recovery' run {position}: not an object")
            continue
        labels.add(run.get("label"))
        for key in RECOVERY_RUN_KEYS:
            if key not in run:
                problems.append(
                    f"section 'recovery' run {position}: missing {key!r}"
                )
    for required in ("supervisor off", "supervisor on"):
        if required not in labels:
            problems.append(f"section 'recovery': missing run {required!r}")
    return problems
