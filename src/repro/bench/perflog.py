"""Persisted benchmark numbers (the perf trajectory across PRs).

The wire-path microbenchmarks don't just assert their speedups — they
record the measured numbers in ``BENCH_wire.json`` at the repository root
so the performance trajectory is tracked in version control.  Each
benchmark owns one *section* of the file (codec, RPC round trip,
multiprocess throughput); re-running a benchmark replaces its section and
leaves the others untouched, so a partial run never erases numbers it did
not re-measure.

The file is written atomically (temp file + ``os.replace``) because the
benchmark suites may run under ``pytest -n``-style parallelism; last
writer wins per section, which is fine for measurements.  Set
``REPRO_BENCH_DIR`` to redirect the output (CI artifacts, scratch runs).
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, Optional

__all__ = ["BENCH_WIRE_FILENAME", "record_wire_benchmark", "wire_benchmark_path"]

BENCH_WIRE_FILENAME = "BENCH_wire.json"


def wire_benchmark_path(path: Optional[str] = None) -> str:
    """Resolve where ``BENCH_wire.json`` lives.

    Precedence: explicit ``path`` argument, then the ``REPRO_BENCH_DIR``
    environment variable, then the repository root (three directories up
    from this file: ``src/repro/bench/`` -> repo).
    """
    if path is not None:
        return path
    env_dir = os.environ.get("REPRO_BENCH_DIR")
    if env_dir:
        return os.path.join(env_dir, BENCH_WIRE_FILENAME)
    here = os.path.dirname(os.path.abspath(__file__))
    repo_root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo_root, BENCH_WIRE_FILENAME)


def record_wire_benchmark(
    section: str, data: Dict[str, Any], path: Optional[str] = None
) -> str:
    """Merge ``data`` into the ``section`` key of ``BENCH_wire.json``.

    Read-modify-write with an atomic replace; a corrupt or missing file is
    started over rather than crashing the benchmark that tried to record
    into it.  Returns the path written, mostly for tests.
    """
    target = wire_benchmark_path(path)
    document: Dict[str, Any] = {}
    try:
        with open(target, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict):
            document = loaded
    except (OSError, ValueError):
        pass  # first run, or unreadable: start a fresh document
    document[section] = data
    directory = os.path.dirname(target) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".bench_wire_", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, target)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return target
