"""Cost model: translating executed work into machine time.

The workload really runs against the TxCache stack, so the *what* (which
queries execute, which cache lookups hit, which entries get invalidated) is
genuine.  What a pure-Python reproduction cannot measure directly is the
*how long* on the paper's hardware — a PostgreSQL server, PHP web servers,
and memcached-class cache nodes on a gigabit LAN.  The cost model assigns
each unit of work a service time:

* **database**: a fixed CPU cost per query plus a per-tuple-examined cost;
  in the disk-bound configuration, result rows that miss a simulated LRU
  buffer cache additionally pay a random-I/O cost.  This reproduces the
  paper's observation that the disk-bound workload is bottlenecked by the
  long tail of rarely accessed rows while hot rows are effectively free.
* **web server**: a per-interaction cost plus a per-cacheable-call cost
  (serialization, templating); cache hits avoid the recomputation cost,
  matching the paper's observed ~15% web CPU reduction.
* **cache server**: a small per-request cost (the paper attributes most of
  it to kernel TCP overhead).

Peak throughput is then ``nodes / demand`` on the bottleneck tier, i.e. the
saturation throughput of a closed-loop system as the client population grows.
The default constants are calibrated so the no-caching baselines land near
the paper's (928 req/s in-memory, 136 req/s disk-bound); only the *shape* of
the curves is meaningful, as the paper's absolute numbers depend on 2010-era
hardware.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional

from repro.db.executor import QueryResult
from repro.db.query import Aggregate, Join, Query, Select

__all__ = ["CostParameters", "ClusterSpec", "BufferCache", "CostModel", "InteractionCost"]


@dataclass(frozen=True)
class CostParameters:
    """Service-time constants (seconds) for the simulated cluster."""

    # Database costs.
    db_cost_per_query: float = 350e-6
    db_cost_per_tuple: float = 4e-6
    db_cost_per_disk_read: float = 6e-3
    db_cost_per_update_txn: float = 900e-6
    #: fraction of rows that fit the buffer cache in the disk-bound config.
    buffer_cache_fraction: float = 0.12
    # Web-server costs.
    web_cost_per_interaction: float = 500e-6
    web_cost_per_cacheable_call: float = 120e-6
    web_cost_per_db_query: float = 40e-6
    #: fraction of the recomputation cost still paid on a cache hit
    #: (deserialization of the cached value).
    web_hit_cost_fraction: float = 0.25
    # Cache-server costs.
    cache_cost_per_request: float = 70e-6
    #: Client-side cost of one cache round trip (marshalling + kernel TCP).
    #: Charged per RPC, so a batched multi-key lookup is charged once — this
    #: is what makes batching pay off in a networked topology.  The default
    #: of zero models the original in-process wiring.
    rpc_cost_seconds: float = 0.0


@dataclass(frozen=True)
class ClusterSpec:
    """How many machines serve each tier (paper: 10 machines total)."""

    db_nodes: int = 1
    web_nodes: int = 7
    cache_nodes: int = 2

    @staticmethod
    def in_memory_default() -> "ClusterSpec":
        """Paper's in-memory setup: 1 DB, 7 web servers, 2 cache nodes."""
        return ClusterSpec(db_nodes=1, web_nodes=7, cache_nodes=2)

    @staticmethod
    def disk_bound_default() -> "ClusterSpec":
        """Paper's disk-bound setup: 1 DB, 8 combined web+cache hosts."""
        return ClusterSpec(db_nodes=1, web_nodes=8, cache_nodes=8)


class BufferCache:
    """An LRU model of the database server's buffer cache (row granularity)."""

    def __init__(self, capacity_rows: int) -> None:
        self.capacity_rows = max(1, capacity_rows)
        self._rows: "OrderedDict[tuple, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, table: str, row_key: object) -> bool:
        """Touch one row; returns True on a buffer-cache hit."""
        key = (table, row_key)
        if key in self._rows:
            self._rows.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._rows[key] = None
        if len(self._rows) > self.capacity_rows:
            self._rows.popitem(last=False)
        return False

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class InteractionCost:
    """Accumulated demand of one interaction, per tier (seconds)."""

    db: float = 0.0
    web: float = 0.0
    cache: float = 0.0

    def add(self, other: "InteractionCost") -> None:
        self.db += other.db
        self.web += other.web
        self.cache += other.cache


class CostModel:
    """Accumulates per-tier demand as the workload executes.

    The model is attached to a deployment: it observes every database query
    through the executor's observer hook and is informed of cache traffic and
    interaction boundaries by the benchmark driver.
    """

    def __init__(
        self,
        parameters: Optional[CostParameters] = None,
        disk_bound: bool = False,
        total_rows: int = 0,
    ) -> None:
        self.parameters = parameters or CostParameters()
        self.disk_bound = disk_bound
        self.buffer_cache: Optional[BufferCache] = None
        if disk_bound:
            capacity = int(total_rows * self.parameters.buffer_cache_fraction)
            self.buffer_cache = BufferCache(capacity_rows=max(64, capacity))
        #: demand accumulated for the interaction currently executing.
        self.current = InteractionCost()
        #: total demand over the measurement window.
        self.total = InteractionCost()
        self.interactions = 0

    # ------------------------------------------------------------------
    # Database-side accounting (executor observer)
    # ------------------------------------------------------------------
    def observe_query(self, query: Query, result: QueryResult) -> None:
        """Charge one database query (called from the executor hook)."""
        params = self.parameters
        cost = params.db_cost_per_query + params.db_cost_per_tuple * result.examined
        if self.buffer_cache is not None:
            table = self._table_of(query)
            for row in result.rows:
                row_key = row.get("id", id(row))
                if not self.buffer_cache.access(table, row_key):
                    cost += params.db_cost_per_disk_read
        self.current.db += cost
        self.current.web += params.web_cost_per_db_query

    def charge_update_transaction(self) -> None:
        """Charge the database for one read/write transaction's commit work."""
        self.current.db += self.parameters.db_cost_per_update_txn

    # ------------------------------------------------------------------
    # Web/cache-side accounting (driver callbacks)
    # ------------------------------------------------------------------
    def charge_cacheable_call(self, hit: bool) -> None:
        """Charge the web server for one cacheable call and the cache node
        for the lookup (plus the insertion on a miss)."""
        params = self.parameters
        if hit:
            self.current.web += params.web_cost_per_cacheable_call * params.web_hit_cost_fraction
            self.current.cache += params.cache_cost_per_request
        else:
            self.current.web += params.web_cost_per_cacheable_call
            self.current.cache += 2 * params.cache_cost_per_request

    def charge_cache_rpcs(self, count: int) -> None:
        """Charge the network cost of ``count`` cache round trips.

        The web tier pays (the application server blocks on the RPC); a
        batched operation counts as one round trip however many keys it
        carries, so the charge rewards batching.
        """
        if count:
            self.current.web += self.parameters.rpc_cost_seconds * count

    def charge_bypassed_call(self) -> None:
        """Charge a cacheable call that bypassed the cache (RW transaction or
        the no-caching baseline): full recomputation cost, no cache traffic."""
        self.current.web += self.parameters.web_cost_per_cacheable_call

    def begin_interaction(self) -> None:
        """Start accounting for a new interaction."""
        self.current = InteractionCost()
        self.current.web += self.parameters.web_cost_per_interaction

    def end_interaction(self) -> InteractionCost:
        """Close the current interaction and fold it into the totals."""
        finished = self.current
        self.total.add(finished)
        self.interactions += 1
        self.current = InteractionCost()
        return finished

    # ------------------------------------------------------------------
    # Derived figures
    # ------------------------------------------------------------------
    def demand_per_interaction(self) -> InteractionCost:
        """Average per-interaction demand over the measurement window."""
        if not self.interactions:
            return InteractionCost()
        return InteractionCost(
            db=self.total.db / self.interactions,
            web=self.total.web / self.interactions,
            cache=self.total.cache / self.interactions,
        )

    def peak_throughput(self, cluster: ClusterSpec) -> float:
        """Saturation throughput (requests/second) given the cluster sizing."""
        demand = self.demand_per_interaction()
        per_tier = {
            "db": demand.db / cluster.db_nodes if demand.db else 0.0,
            "web": demand.web / cluster.web_nodes if demand.web else 0.0,
            "cache": demand.cache / cluster.cache_nodes if demand.cache else 0.0,
        }
        bottleneck = max(per_tier.values())
        return 1.0 / bottleneck if bottleneck > 0 else float("inf")

    def bottleneck(self, cluster: ClusterSpec) -> str:
        """Name of the tier limiting throughput."""
        demand = self.demand_per_interaction()
        per_tier = {
            "db": demand.db / cluster.db_nodes,
            "web": demand.web / cluster.web_nodes,
            "cache": demand.cache / cluster.cache_nodes,
        }
        return max(per_tier, key=per_tier.get)

    def utilization_shares(self, cluster: ClusterSpec) -> Dict[str, float]:
        """Per-tier demand normalized by the bottleneck tier's demand."""
        demand = self.demand_per_interaction()
        per_tier = {
            "db": demand.db / cluster.db_nodes,
            "web": demand.web / cluster.web_nodes,
            "cache": demand.cache / cluster.cache_nodes,
        }
        peak = max(per_tier.values()) or 1.0
        return {tier: value / peak for tier, value in per_tier.items()}

    def reset(self) -> None:
        """Clear accumulated demand (used after warmup)."""
        self.total = InteractionCost()
        self.current = InteractionCost()
        self.interactions = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _table_of(query: Query) -> str:
        if isinstance(query, Select):
            return query.table
        if isinstance(query, Aggregate):
            return query.source.table
        if isinstance(query, Join):
            return query.outer.table
        return "<unknown>"
