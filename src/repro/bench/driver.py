"""The benchmark drivers: simulated saturation and wall-clock concurrency.

Two drivers live here.  :func:`run_benchmark` reproduces the paper's
figures: it runs the RUBiS workload single-threaded and derives *simulated*
peak throughput from the cost model, so its results are exact, deterministic
and transport-invariant.  :func:`run_concurrent_benchmark` measures the
system as a system: K worker threads, each owning its own
:class:`TxCacheClient` (one per emulated application server, exactly the
paper's topology), drive transactions against one shared deployment and the
driver reports *wall-clock* operations per second — the number that shows
whether the request path (pooled socket transport, thread-safe cache tier,
locked pincushion/bus) actually admits concurrent traffic.

The benchmark driver below: run a RUBiS workload and derive peak throughput.

One :func:`run_benchmark` call corresponds to one point of one of the paper's
figures: a database configuration (in-memory or disk-bound), a total cache
size, a staleness limit, and a consistency mode.  The driver

1. builds a deployment, loads the scaled RUBiS dataset, and creates emulated
   client sessions running the bidding mix;
2. warms the cache (the paper restores a cache snapshot taken after an hour
   of traffic; the warmup phase plays the same role);
3. runs the measurement window, attributing machine time to the database,
   web-server, and cache tiers with the cost model and advancing the
   simulated clock at the rate the bottleneck tier can sustain (i.e., the
   system is measured at saturation, which is what "peak throughput" means
   in the paper);
4. reports throughput, hit rate, and the miss-type breakdown.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.rubis.app import RubisApp
from repro.apps.rubis.datagen import RubisConfig, populate_database
from repro.apps.rubis.schema import create_rubis_schema
from repro.apps.rubis.workload import BIDDING_MIX, RubisClientSession, WorkloadMix
from repro.bench.costmodel import ClusterSpec, CostModel, CostParameters, InteractionCost
from repro.clock import ManualClock, SystemClock
from repro.core.api import ConsistencyMode
from repro.core.stats import ClientStats, MissType
from repro.db.errors import SerializationError
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema
from repro.deployment import TxCacheDeployment

__all__ = [
    "BenchmarkConfig",
    "BenchmarkResult",
    "ChurnEvent",
    "ConcurrencyConfig",
    "ConcurrencyResult",
    "MultiprocessConfig",
    "MultiprocessResult",
    "TimedChurnEvent",
    "build_worker_stack",
    "fork_context",
    "rolling_restart_events",
    "run_benchmark",
    "run_concurrent_benchmark",
    "run_multiprocess_benchmark",
    "start_pages_deployment",
]

#: Smallest clock advance per interaction; keeps time moving even for
#: interactions fully absorbed by idle capacity.
_MIN_TIME_STEP = 1e-5


@dataclass(frozen=True)
class ChurnEvent:
    """One cache-tier membership change during the measurement phase.

    ``action`` is ``"join"`` (a node is added; ``migrate`` selects a warm
    join via live key migration or a cold one), ``"leave"`` (a planned
    removal, drained when ``migrate``), or ``"crash"`` (the node dies
    without warning; failure-aware routing detects and evicts it).  A
    *rolling restart* is expressed as interleaved crash/join pairs per node
    (see :func:`rolling_restart_events`): joining a node whose crash has not
    crossed the failure-detection threshold yet completes the eviction
    first, exactly as an operator restarting a wedged process would.
    """

    at_interaction: int
    action: str  # "join" | "leave" | "crash"
    node: Optional[str] = None
    migrate: bool = True
    weight: float = 1.0


def rolling_restart_events(
    nodes: Sequence[str], start: int, downtime: int, gap: int, migrate: bool = True
) -> List[ChurnEvent]:
    """A rolling-restart schedule: crash then rejoin each node in turn.

    Node ``i`` crashes at ``start + i * gap`` and rejoins (a warm join when
    ``migrate``) ``downtime`` interactions later; ``gap`` must exceed
    ``downtime`` for at most one node to be down at a time.
    """
    if downtime < 1 or gap <= downtime:
        raise ValueError("need gap > downtime >= 1 for a one-at-a-time rolling restart")
    events: List[ChurnEvent] = []
    for index, node in enumerate(nodes):
        offset = start + index * gap
        events.append(ChurnEvent(offset, "crash", node=node))
        events.append(ChurnEvent(offset + downtime, "join", node=node, migrate=migrate))
    return events


@dataclass
class BenchmarkConfig:
    """Parameters of one benchmark run (one point on a figure)."""

    database_config: RubisConfig
    cache_size_bytes: int
    staleness: float = 30.0
    mode: ConsistencyMode = ConsistencyMode.CONSISTENT
    scale: int = 100
    cluster: Optional[ClusterSpec] = None
    cost_parameters: CostParameters = field(default_factory=CostParameters)
    mix: WorkloadMix = field(default_factory=lambda: BIDDING_MIX)
    #: How application servers reach the cache nodes: "inprocess" (direct
    #: calls, the original wiring) or "socket" (real TCP cache servers).
    transport: str = "inprocess"
    #: Copies of each key across the cache tier (1 = the paper's
    #: unreplicated deployment; 2+ makes node crashes lose no cached state).
    replication_factor: int = 1
    sessions: int = 24
    warmup_interactions: int = 2000
    measure_interactions: int = 4000
    housekeeping_every: int = 400
    seed: int = 1
    label: str = ""
    #: Membership changes applied during the measurement phase (node-churn
    #: scenarios); each event fires before its ``at_interaction``-th step.
    churn: Sequence[ChurnEvent] = ()
    #: Interactions per hit-rate sample in ``BenchmarkResult.hit_rate_timeline``
    #: (0 disables the timeline).
    hit_rate_window: int = 0

    def resolved_cluster(self) -> ClusterSpec:
        if self.cluster is not None:
            return self.cluster
        if self.database_config.disk_bound:
            return ClusterSpec.disk_bound_default()
        return ClusterSpec.in_memory_default()


@dataclass
class BenchmarkResult:
    """Outcome of one benchmark run."""

    label: str
    config: BenchmarkConfig
    peak_throughput: float
    hit_rate: float
    miss_fractions: Dict[MissType, float]
    miss_counts: Dict[MissType, int]
    bottleneck: str
    utilization: Dict[str, float]
    interactions: int
    read_write_fraction: float
    demand: InteractionCost
    cache_used_bytes: int
    cache_entry_count: int
    invalidations_published: int
    simulated_seconds: float
    #: Hit rate per ``hit_rate_window`` interactions over the measurement
    #: phase (empty unless the config enables the timeline); this is what a
    #: churn scenario's recovery curve is read from.
    hit_rate_timeline: List[float] = field(default_factory=list)
    #: Elasticity counters (membership epochs, migration, degraded routing).
    membership_epochs: int = 0
    entries_migrated: int = 0
    degraded_lookups: int = 0
    nodes_evicted: int = 0
    #: Replication counters: reads a non-primary replica answered after the
    #: primary failed (and how many of those were hits), plus the entries
    #: anti-entropy repair re-stored after crash evictions.
    replica_served_lookups: int = 0
    replica_hits: int = 0
    entries_re_replicated: int = 0

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label or 'run'}: {self.peak_throughput:8.1f} req/s  "
            f"hit rate {self.hit_rate:5.1%}  bottleneck {self.bottleneck}"
        )


def run_benchmark(config: BenchmarkConfig) -> BenchmarkResult:
    """Execute one benchmark configuration and return its measurements."""
    for event in config.churn:
        if not 0 <= event.at_interaction < config.measure_interactions:
            raise ValueError(
                f"churn event at interaction {event.at_interaction} falls outside "
                f"the measurement phase [0, {config.measure_interactions}) and "
                "would silently never fire"
            )
    cluster = config.resolved_cluster()
    scaled_db_config = config.database_config.scaled(config.scale)

    clock = ManualClock()
    deployment = TxCacheDeployment(
        clock=clock,
        cache_nodes=cluster.cache_nodes,
        cache_capacity_bytes_per_node=max(1, config.cache_size_bytes // cluster.cache_nodes),
        mode=config.mode,
        default_staleness=config.staleness,
        transport=config.transport,
        replication_factor=config.replication_factor,
    )
    try:
        return _run_on_deployment(config, cluster, scaled_db_config, clock, deployment)
    finally:
        # Networked cache nodes hold sockets and threads; release them even
        # when setup or the workload fails.
        deployment.shutdown()


def _run_on_deployment(
    config: BenchmarkConfig,
    cluster: ClusterSpec,
    scaled_db_config: RubisConfig,
    clock: ManualClock,
    deployment: TxCacheDeployment,
) -> BenchmarkResult:
    create_rubis_schema(deployment.database)
    dataset = populate_database(deployment.database, scaled_db_config, seed=config.seed)

    total_rows = sum(
        table.current_row_count() for table in deployment.database.tables.values()
    )
    cost_model = CostModel(
        parameters=config.cost_parameters,
        disk_bound=scaled_db_config.disk_bound,
        total_rows=total_rows,
    )
    deployment.database.executor.add_observer(cost_model.observe_query)

    client = deployment.client(mode=config.mode, default_staleness=config.staleness)
    app = RubisApp(client, dataset)
    sessions = [
        RubisClientSession(
            app,
            config.mix,
            seed=config.seed * 1000 + i,
            staleness=config.staleness,
            now_fn=clock.now,
        )
        for i in range(config.sessions)
    ]

    def apply_churn(event: ChurnEvent) -> None:
        """Apply one membership change to the running deployment."""
        if event.action == "join":
            name = event.node
            if name is not None and name in deployment.cache.ring:
                # A restart of a crashed node whose failure has not crossed
                # the detection threshold yet (socket transport keeps dead
                # endpoints in the ring until enough traffic fails):
                # complete the eviction first, then rejoin warm.
                process = deployment.cache.processes.get(name)
                dead = name in deployment.cache.suspect_nodes or (
                    process is not None and not process.running
                )
                if not dead:
                    raise ValueError(f"churn join of live member {name!r}")
                deployment.membership.evict(name)
            deployment.add_cache_node(
                name=event.node, weight=event.weight, migrate=event.migrate
            )
        elif event.action == "leave":
            name = event.node or deployment.cache.ring.nodes[-1]
            deployment.remove_cache_node(name, migrate=event.migrate)
        elif event.action == "crash":
            name = event.node or deployment.cache.ring.nodes[-1]
            deployment.cache.fail_node(name)
        else:
            raise ValueError(f"unknown churn action {event.action!r}")

    def run_phase(
        interactions: int,
        churn: Sequence[ChurnEvent] = (),
        timeline: Optional[List[float]] = None,
    ) -> float:
        """Run ``interactions`` steps; returns elapsed simulated seconds."""
        elapsed = 0.0
        pending = sorted(churn, key=lambda event: event.at_interaction)
        window_start: Tuple[int, int] = (client.stats.hits, client.stats.misses)
        for step in range(interactions):
            while pending and pending[0].at_interaction <= step:
                apply_churn(pending.pop(0))
            session = sessions[step % len(sessions)]
            before_hits = client.stats.hits
            before_misses = client.stats.misses
            before_bypassed = client.stats.cache_bypassed_calls
            before_rw = client.stats.rw_transactions
            before_rpcs = client.stats.cache_rpcs

            cost_model.begin_interaction()
            session.step()

            for _ in range(client.stats.hits - before_hits):
                cost_model.charge_cacheable_call(hit=True)
            for _ in range(client.stats.misses - before_misses):
                cost_model.charge_cacheable_call(hit=False)
            for _ in range(client.stats.cache_bypassed_calls - before_bypassed):
                cost_model.charge_bypassed_call()
            cost_model.charge_cache_rpcs(client.stats.cache_rpcs - before_rpcs)
            if client.stats.rw_transactions > before_rw:
                cost_model.charge_update_transaction()
            cost = cost_model.end_interaction()

            # At saturation the system completes one interaction per
            # bottleneck-demand interval, so that is how fast simulated
            # wall-clock time advances.
            step_time = max(
                cost.db / cluster.db_nodes,
                cost.web / cluster.web_nodes,
                cost.cache / cluster.cache_nodes,
                _MIN_TIME_STEP,
            )
            clock.advance(step_time)
            elapsed += step_time

            if (step + 1) % config.housekeeping_every == 0:
                deployment.housekeeping(config.staleness)
            if (
                timeline is not None
                and config.hit_rate_window
                and (step + 1) % config.hit_rate_window == 0
            ):
                hits = client.stats.hits - window_start[0]
                misses = client.stats.misses - window_start[1]
                looked_up = hits + misses
                timeline.append(hits / looked_up if looked_up else 0.0)
                window_start = (client.stats.hits, client.stats.misses)
        return elapsed

    # Warmup: populate the cache, then discard all counters.
    run_phase(config.warmup_interactions)
    cost_model.reset()
    client.stats.reset()
    deployment.cache.reset_stats()
    deployment.database.stats.reset()

    hit_rate_timeline: List[float] = []
    simulated_seconds = run_phase(
        config.measure_interactions,
        churn=config.churn,
        timeline=hit_rate_timeline if config.hit_rate_window else None,
    )

    total_rw = sum(session.read_write_count for session in sessions)
    total_all = sum(
        session.read_write_count + session.read_only_count for session in sessions
    )
    miss_counts = dict(client.stats.misses_by_type)
    return BenchmarkResult(
        label=config.label,
        config=config,
        peak_throughput=cost_model.peak_throughput(cluster),
        hit_rate=client.stats.hit_rate,
        miss_fractions=client.stats.miss_fractions(),
        miss_counts=miss_counts,
        bottleneck=cost_model.bottleneck(cluster),
        utilization=cost_model.utilization_shares(cluster),
        interactions=config.measure_interactions,
        read_write_fraction=total_rw / total_all if total_all else 0.0,
        demand=cost_model.demand_per_interaction(),
        cache_used_bytes=deployment.cache.used_bytes,
        cache_entry_count=deployment.cache.entry_count,
        invalidations_published=deployment.database.stats.invalidations_published,
        simulated_seconds=simulated_seconds,
        hit_rate_timeline=hit_rate_timeline,
        membership_epochs=deployment.membership.epoch,
        entries_migrated=deployment.membership.stats.entries_migrated,
        degraded_lookups=deployment.cache.health.degraded_lookups,
        nodes_evicted=deployment.cache.health.nodes_evicted,
        replica_served_lookups=deployment.cache.health.replica_served_lookups,
        replica_hits=deployment.cache.health.replica_hits,
        entries_re_replicated=deployment.membership.stats.entries_re_replicated,
    )


# ----------------------------------------------------------------------
# Wall-clock concurrency driver
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TimedChurnEvent:
    """One membership change applied while worker threads drive traffic.

    Fires once the fleet has completed ``at_done_fraction`` of the run's
    total interactions: ``"crash"`` kills the node without warning,
    ``"join"`` (re)joins it — a crash/join pair is the concurrent analogue
    of :func:`rolling_restart_events`, exercising failure detection,
    threshold eviction, and warm rejoin *under* live multi-threaded load.
    """

    at_done_fraction: float
    action: str  # "crash" | "join"
    node: Optional[str] = None
    migrate: bool = True


@dataclass
class ConcurrencyConfig:
    """Parameters of one wall-clock concurrency measurement."""

    #: Worker threads; each owns one TxCacheClient (one emulated app server).
    threads: int = 4
    transport: str = "socket"
    cache_nodes: int = 2
    cache_capacity_bytes_per_node: int = 8 * 1024 * 1024
    #: Rows in the hot table the workload reads and updates.
    rows: int = 256
    #: Measured interactions each worker performs.
    interactions_per_thread: int = 400
    #: Fraction of interactions that are update transactions (they bypass
    #: the cache, take the database commit lock, and publish invalidations —
    #: i.e. they exercise every lock the read path can contend on).
    write_fraction: float = 0.05
    staleness: float = 30.0
    replication_factor: int = 1
    #: Pooled connections per node; None sizes the pool to ``threads`` so
    #: every worker can have an RPC in flight.
    socket_pool_size: Optional[int] = None
    #: Modelled LAN round trip per cache RPC (see CacheServerProcess).  On a
    #: loopback interface an RPC is pure CPU and the GIL serializes it, so
    #: the default models the ~0.4 ms round trip of the paper's gigabit
    #: testbed; set to 0 to measure raw loopback.
    simulated_rpc_latency_seconds: float = 4e-4
    #: Membership changes applied mid-run by the coordinator thread.
    churn: Sequence[TimedChurnEvent] = ()
    seed: int = 1
    label: str = ""


@dataclass
class ConcurrencyResult:
    """Outcome of one wall-clock concurrency measurement."""

    label: str
    threads: int
    transport: str
    #: Total measured interactions completed across all workers.
    interactions: int
    wall_seconds: float
    ops_per_second: float
    hit_rate: float
    #: Per-thread client counters merged into one (ClientStats.merge).
    client_stats: ClientStats
    per_thread_interactions: List[int]
    #: Update transactions aborted by a first-committer-wins race with
    #: another worker.  The write is *dropped* (the interaction still counts
    #: toward throughput); a real application server would retry it.
    write_conflicts: int
    degraded_lookups: int
    nodes_evicted: int
    replica_served_lookups: int
    #: Exceptions escaped from workers (always 0 on a healthy run).
    errors: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label or 'run'}: {self.threads} thread(s) x {self.transport}: "
            f"{self.ops_per_second:8.1f} ops/s  hit rate {self.hit_rate:5.1%}"
        )


class _ConcurrentWorker:
    """One emulated application server: a thread, a client, its own RNG."""

    def __init__(self, config: ConcurrencyConfig, deployment, index: int, barrier):
        self.config = config
        self.deployment = deployment
        self.index = index
        self.barrier = barrier
        #: Per-thread RNG: the op sequence each worker issues is a pure
        #: function of (seed, thread index), so runs are reproducible even
        #: though the cross-thread interleaving is not.
        self.rng = random.Random(config.seed * 1000 + index)
        self.client = deployment.client(default_staleness=config.staleness)
        self.completed = 0
        self.write_conflicts = 0
        self.errors = 0
        client = self.client

        @client.cacheable(name="bench_get_row")
        def get_row(row_id):
            return client.query(Select("pages", Eq("id", row_id))).rows[0]

        self._get_row = get_row
        self.thread = threading.Thread(
            target=self._run, name=f"bench-client-{index}", daemon=True
        )

    def _interaction(self) -> None:
        if self.rng.random() < self.config.write_fraction:
            row_id = self.rng.randrange(self.config.rows)
            try:
                with self.client.read_write():
                    self.client.update(
                        "pages", Eq("id", row_id), {"hits": self.rng.randrange(1 << 30)}
                    )
            except SerializationError:
                # First-committer-wins: another worker updated the same row
                # concurrently.  Real app servers retry; we count and go on.
                self.write_conflicts += 1
            return
        with self.client.read_only(staleness=self.config.staleness):
            for _ in range(self.rng.randint(1, 3)):
                self._get_row(self.rng.randrange(self.config.rows))

    def _run(self) -> None:
        self.barrier.wait()
        for _ in range(self.config.interactions_per_thread):
            try:
                self._interaction()
            except Exception:
                # A worker must never die silently: the run reports errors
                # and the stress tests assert the count is zero.
                self.errors += 1
            self.completed += 1


def run_concurrent_benchmark(config: ConcurrencyConfig) -> ConcurrencyResult:
    """Measure wall-clock throughput of K client threads on one deployment.

    Builds a deployment, loads a hot table, warms the cache with one
    sequential pass, then releases all workers at a barrier and times the
    measured phase end to end.  ``config.churn`` events fire from the
    coordinator thread while the workers run.
    """
    if config.threads < 1:
        raise ValueError("threads must be positive")
    pool = config.socket_pool_size or max(1, config.threads)
    deployment = TxCacheDeployment(
        clock=SystemClock(),
        cache_nodes=config.cache_nodes,
        cache_capacity_bytes_per_node=config.cache_capacity_bytes_per_node,
        transport=config.transport,
        default_staleness=config.staleness,
        replication_factor=config.replication_factor,
        socket_pool_size=pool,
        simulated_rpc_latency_seconds=config.simulated_rpc_latency_seconds,
    )
    try:
        deployment.database.create_table(
            TableSchema.build("pages", ["id", "payload", "hits"], primary_key="id")
        )
        deployment.database.bulk_load(
            "pages",
            [
                {"id": i, "payload": "x" * 128, "hits": 0}
                for i in range(config.rows)
            ],
        )

        # Warm sequentially so the measured phase starts from a hot cache
        # (the paper restores a cache snapshot; this plays the same role).
        warm_worker = _ConcurrentWorker(config, deployment, index=9999, barrier=_NoBarrier())
        for row_id in range(config.rows):
            with warm_worker.client.read_only(staleness=config.staleness):
                warm_worker._get_row(row_id)

        barrier = threading.Barrier(config.threads + 1)
        workers = [
            _ConcurrentWorker(config, deployment, index, barrier)
            for index in range(config.threads)
        ]
        for worker in workers:
            worker.thread.start()

        total_target = config.threads * config.interactions_per_thread
        pending_churn = sorted(config.churn, key=lambda event: event.at_done_fraction)

        barrier.wait()
        started = time.perf_counter()
        while any(worker.thread.is_alive() for worker in workers):
            done = sum(worker.completed for worker in workers)
            while pending_churn and done >= pending_churn[0].at_done_fraction * total_target:
                _apply_timed_churn(deployment, pending_churn.pop(0))
            time.sleep(0.001)
        wall = time.perf_counter() - started
        for worker in workers:
            worker.thread.join()
        # Drain events whose threshold was crossed inside the final polling
        # window (fast runs can finish between two 1 ms checks, and an event
        # at fraction 1.0 only fires here).  Firing them late keeps the
        # result's counters honest — a run configured with churn must never
        # silently report a churn-free baseline.
        while pending_churn:
            _apply_timed_churn(deployment, pending_churn.pop(0))

        merged = ClientStats()
        for worker in workers:
            merged += worker.client.stats
        interactions = sum(worker.completed for worker in workers)
        health = deployment.cache.health
        return ConcurrencyResult(
            label=config.label,
            threads=config.threads,
            transport=config.transport,
            interactions=interactions,
            wall_seconds=wall,
            ops_per_second=interactions / wall if wall > 0 else 0.0,
            hit_rate=merged.hit_rate,
            client_stats=merged,
            per_thread_interactions=[worker.completed for worker in workers],
            write_conflicts=sum(worker.write_conflicts for worker in workers),
            degraded_lookups=health.degraded_lookups,
            nodes_evicted=health.nodes_evicted,
            replica_served_lookups=health.replica_served_lookups,
            errors=sum(worker.errors for worker in workers),
        )
    finally:
        deployment.shutdown()


class _NoBarrier:
    """Stand-in barrier for the sequential warmup worker."""

    def wait(self) -> None:
        return None


def _apply_timed_churn(deployment: TxCacheDeployment, event: TimedChurnEvent) -> None:
    """Apply one membership change to a deployment under live traffic.

    Unlike the simulated driver's churn, this runs concurrently with worker
    threads whose failed RPCs drive threshold eviction, so every check-then-
    act here can lose a race: the node observed in the ring may be evicted
    by a worker before the coordinator acts on it.  Losing that race means
    the failure detector already did the job — swallow the KeyError and
    proceed.
    """
    if event.action == "crash":
        name = event.node or deployment.cache.ring.nodes[-1]
        try:
            deployment.cache.fail_node(name)
        except KeyError:
            pass  # a worker's failed RPCs already evicted it
    elif event.action == "join":
        name = event.node
        if name is not None and name in deployment.cache.ring:
            # Rejoin of a crashed node that has not crossed the failure
            # threshold yet: complete the eviction, then rejoin warm (same
            # policy as the simulated driver's churn).
            try:
                deployment.membership.evict(name)
            except KeyError:
                pass  # threshold eviction won the race mid-check
        deployment.add_cache_node(name=name, migrate=event.migrate)
    else:
        raise ValueError(f"unknown timed churn action {event.action!r}")


# ----------------------------------------------------------------------
# Shared bootstrap for the multi-process drivers (closed- and open-loop)
# ----------------------------------------------------------------------
def _pages_rows(rows: int) -> List[dict]:
    """The hot table every multi-process worker replicates identically."""
    return [{"id": i, "payload": "x" * 128, "hits": 0} for i in range(rows)]


def start_pages_deployment(
    *,
    transport: str,
    cache_nodes: int,
    cache_capacity_bytes_per_node: int,
    staleness: float,
    simulated_rpc_latency_seconds: float,
    rows: int,
    socket_pipelined: Optional[bool] = None,
    server_style: Optional[str] = None,
    wire_codec: Optional[str] = None,
    mux_read_lease: bool = True,
    write_coalescing: bool = True,
    cpu_pinning: bool = False,
) -> TxCacheDeployment:
    """Build, load, and warm the networked deployment the forked workers dial.

    Shared by :func:`run_multiprocess_benchmark` and the open-loop runner
    (:mod:`repro.bench.loadgen.runner`): one ``pages`` table, one warmup
    pass so every worker starts from hits (the paper restores a cache
    snapshot; the warmup plays the same role).  The deployment is shut down
    on a bootstrap failure so a broken config never leaks server threads.
    """
    deployment = TxCacheDeployment(
        clock=SystemClock(),
        cache_nodes=cache_nodes,
        cache_capacity_bytes_per_node=cache_capacity_bytes_per_node,
        transport=transport,
        socket_pipelined=socket_pipelined,
        cache_server_style=server_style,
        default_staleness=staleness,
        simulated_rpc_latency_seconds=simulated_rpc_latency_seconds,
        wire_codec=wire_codec,
        mux_read_lease=mux_read_lease,
        write_coalescing=write_coalescing,
        cpu_pinning=cpu_pinning,
    )
    try:
        deployment.database.create_table(
            TableSchema.build("pages", ["id", "payload", "hits"], primary_key="id")
        )
        deployment.database.bulk_load("pages", _pages_rows(rows))
        warm_client = deployment.client(default_staleness=staleness)

        @warm_client.cacheable(name="bench_get_row")
        def warm_get_row(row_id):
            return warm_client.query(Select("pages", Eq("id", row_id))).rows[0]

        for row_id in range(rows):
            with warm_client.read_only(staleness=staleness):
                warm_get_row(row_id)
    except BaseException:
        deployment.shutdown()
        raise
    return deployment


def build_worker_stack(
    addresses,
    *,
    transport: str,
    rows: int,
    staleness: float,
    clients: int,
    socket_pipelined: Optional[bool] = None,
    socket_pool_size: Optional[int] = None,
    wire_codec: Optional[str] = None,
    mux_read_lease: bool = True,
):
    """One forked worker's client-side stack: ``(cluster, client list)``.

    Each worker process owns its own database replica, pincushion, and a
    client-only :class:`~repro.cache.cluster.CacheCluster` dialled at the
    coordinator's cache-node endpoints.  No invalidation bus — the
    multi-process workload is read-only by construction (the reproduction's
    database is an in-process object), so the stream stays silent and every
    replica's identical ``pages`` load keeps the shared cache coherent.
    The caller owns the cluster and must ``close()`` it.
    """
    from repro.cache.cluster import CacheCluster
    from repro.core.api import TxCacheClient
    from repro.db.database import Database
    from repro.pincushion.pincushion import Pincushion

    clock = SystemClock()
    database = Database(clock=clock)
    database.create_table(
        TableSchema.build("pages", ["id", "payload", "hits"], primary_key="id")
    )
    database.bulk_load("pages", _pages_rows(rows))
    cluster = CacheCluster(
        node_addresses=addresses,
        transport=transport,
        socket_pipelined=socket_pipelined,
        socket_pool_size=socket_pool_size,
        clock=clock,
        wire_codec=wire_codec,
        mux_read_lease=mux_read_lease,
    )
    pincushion = Pincushion(clock=clock, unpin_callback=database.unpin)
    client_list = [
        TxCacheClient(
            database=database,
            cache=cluster,
            pincushion=pincushion,
            clock=clock,
            default_staleness=staleness,
        )
        for _ in range(clients)
    ]
    return cluster, client_list


def fork_context():
    """The multiprocessing context the drivers fork workers with.

    Fork keeps the already-imported interpreter (fast, Linux); spawn is the
    portable fallback — worker entry points and their arguments are
    picklable either way.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else methods[0])


# ----------------------------------------------------------------------
# Multi-process driver (no client GIL in the measurement)
# ----------------------------------------------------------------------
@dataclass
class MultiprocessConfig:
    """Parameters of one multi-process wall-clock measurement.

    The threaded driver above shares one interpreter between all workers,
    so past a point the curve measures the *client* GIL, not the cache
    tier.  This driver forks ``processes`` OS processes: each builds its
    own client-side stack (database replica, pincushion, and a client-only
    :class:`repro.cache.cluster.CacheCluster` dialled at the coordinator's
    cache-node endpoints) and drives ``threads_per_process`` worker threads
    against the *shared* networked cache nodes.  What saturates first is
    therefore the server side — exactly what the pipelined-transport /
    event-loop-server comparison needs to expose.

    The workload is read-only by construction: the reproduction's database
    is an in-process object, so a forked worker's writes could not reach
    the other workers' replicas and the shared cache would mix states from
    diverged databases.  Every worker loads the identical ``pages`` table
    (same rows, same commit timestamps), which makes the shared cache
    coherent across processes without a networked database.
    """

    processes: int = 4
    #: Worker threads inside each process; with the modelled LAN round trip
    #: they give each process several RPCs in flight, which is what makes
    #: the pooled-vs-pipelined connection discipline observable.
    threads_per_process: int = 4
    #: "socket" (pooled + threaded server) or "socket-pipelined"
    #: (multiplexed + event-loop server); the overrides below mix and match.
    transport: str = "socket"
    socket_pipelined: Optional[bool] = None
    server_style: Optional[str] = None
    cache_nodes: int = 2
    cache_capacity_bytes_per_node: int = 8 * 1024 * 1024
    rows: int = 256
    #: Measured interactions per worker thread (total = processes x
    #: threads_per_process x this).
    interactions_per_thread: int = 300
    staleness: float = 30.0
    #: Pooled connections per node per process (pooled mode only); None
    #: sizes the pool to ``threads_per_process``.
    socket_pool_size: Optional[int] = None
    #: Modelled LAN round trip per cache RPC (see CacheServerProcess).
    simulated_rpc_latency_seconds: float = 4e-4
    #: Hot-path body codec on the pipelined wire ("binary" | "pickle";
    #: None = the REPRO_WIRE_CODEC default).  Applied to the coordinator's
    #: servers and every worker's client-only cluster.
    wire_codec: Optional[str] = None
    #: Calling-thread read lease on mux connections (see SocketTransport).
    mux_read_lease: bool = True
    #: One sendmsg gather per readiness event on event-loop servers.
    write_coalescing: bool = True
    seed: int = 1
    label: str = ""


@dataclass
class MultiprocessResult:
    """Outcome of one multi-process wall-clock measurement."""

    label: str
    processes: int
    threads_per_process: int
    transport: str
    interactions: int
    wall_seconds: float
    ops_per_second: float
    hit_rate: float
    per_process_interactions: List[int]
    #: Exceptions escaped from worker threads (0 on a healthy run), plus
    #: workers that failed to bootstrap at all.
    errors: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.label or 'run'}: {self.processes} proc x "
            f"{self.threads_per_process} thr ({self.transport}): "
            f"{self.ops_per_second:8.1f} ops/s  hit rate {self.hit_rate:5.1%}"
        )


def _multiprocess_worker(index: int, addresses, config: MultiprocessConfig, barrier, queue) -> None:
    """One forked worker: build a client stack, drive threads, report.

    Runs in a child process.  The worker must *always* reach the barrier
    (the coordinator waits on it before starting the clock), so bootstrap
    failures are carried past it and reported through the queue instead of
    deadlocking the run.
    """
    cluster = None
    bootstrap_error: Optional[str] = None
    clients: List = []
    try:
        cluster, clients = build_worker_stack(
            addresses,
            transport=config.transport,
            rows=config.rows,
            staleness=config.staleness,
            clients=config.threads_per_process,
            socket_pipelined=config.socket_pipelined,
            socket_pool_size=config.socket_pool_size or max(1, config.threads_per_process),
            wire_codec=config.wire_codec,
            mux_read_lease=config.mux_read_lease,
        )
    except Exception as exc:  # noqa: BLE001 - reported via the queue
        bootstrap_error = f"{type(exc).__name__}: {exc}"

    completed = [0] * config.threads_per_process
    errors = [0] * config.threads_per_process

    def run_thread(thread_index: int) -> None:
        client = clients[thread_index]
        rng = random.Random(config.seed * 100_000 + index * 100 + thread_index)

        @client.cacheable(name="bench_get_row")
        def get_row(row_id):
            return client.query(Select("pages", Eq("id", row_id))).rows[0]

        for _ in range(config.interactions_per_thread):
            try:
                with client.read_only(staleness=config.staleness):
                    for _ in range(rng.randint(1, 3)):
                        get_row(rng.randrange(config.rows))
            except Exception:  # noqa: BLE001 - counted, run continues
                errors[thread_index] += 1
            completed[thread_index] += 1

    try:
        barrier.wait(timeout=60)
    except Exception:
        bootstrap_error = bootstrap_error or "coordination barrier broke"
    if bootstrap_error is None:
        threads = [
            threading.Thread(target=run_thread, args=(i,), daemon=True)
            for i in range(config.threads_per_process)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    merged = ClientStats()
    for client in clients:
        merged += client.stats
    queue.put(
        {
            "index": index,
            "completed": sum(completed),
            "hits": merged.hits,
            "misses": merged.misses,
            "errors": sum(errors) + (1 if bootstrap_error else 0),
            "bootstrap_error": bootstrap_error,
        }
    )
    if cluster is not None:
        cluster.close()


def run_multiprocess_benchmark(config: MultiprocessConfig) -> MultiprocessResult:
    """Measure wall-clock throughput of K worker *processes* on one cache tier.

    The coordinator builds the networked deployment, loads and warms it,
    then forks the workers and times the measured phase from the moment the
    start barrier releases to the last worker's report.  Worker results
    travel back over a queue (one message per process); a worker that fails
    to bootstrap reports the failure instead of hanging the barrier.
    """
    if config.processes < 1:
        raise ValueError("processes must be positive")
    if config.threads_per_process < 1:
        raise ValueError("threads_per_process must be positive")
    if config.transport not in ("socket", "socket-pipelined", "socket-process"):
        raise ValueError("multi-process driver requires a socket transport")
    deployment = start_pages_deployment(
        transport=config.transport,
        cache_nodes=config.cache_nodes,
        cache_capacity_bytes_per_node=config.cache_capacity_bytes_per_node,
        staleness=config.staleness,
        simulated_rpc_latency_seconds=config.simulated_rpc_latency_seconds,
        rows=config.rows,
        socket_pipelined=config.socket_pipelined,
        server_style=config.server_style,
        wire_codec=config.wire_codec,
        mux_read_lease=config.mux_read_lease,
        write_coalescing=config.write_coalescing,
    )
    try:
        addresses = {
            name: process.address
            for name, process in deployment.cache.processes.items()
        }
        context = fork_context()
        barrier = context.Barrier(config.processes + 1)
        queue = context.Queue()
        workers = [
            context.Process(
                target=_multiprocess_worker,
                args=(index, addresses, config, barrier, queue),
                daemon=True,
            )
            for index in range(config.processes)
        ]
        for worker in workers:
            worker.start()
        barrier.wait(timeout=120)
        started = time.perf_counter()
        reports = [queue.get(timeout=600) for _ in workers]
        wall = time.perf_counter() - started
        for worker in workers:
            worker.join(timeout=30)

        interactions = sum(report["completed"] for report in reports)
        hits = sum(report["hits"] for report in reports)
        misses = sum(report["misses"] for report in reports)
        looked_up = hits + misses
        return MultiprocessResult(
            label=config.label,
            processes=config.processes,
            threads_per_process=config.threads_per_process,
            transport=_transport_label(config),
            interactions=interactions,
            wall_seconds=wall,
            ops_per_second=interactions / wall if wall > 0 else 0.0,
            hit_rate=hits / looked_up if looked_up else 0.0,
            per_process_interactions=[
                report["completed"]
                for report in sorted(reports, key=lambda r: r["index"])
            ],
            errors=sum(report["errors"] for report in reports),
        )
    finally:
        deployment.shutdown()


def _transport_label(config: MultiprocessConfig) -> str:
    """Human-readable wire-path label: client framing x server engine."""
    pipelined = (
        config.socket_pipelined
        if config.socket_pipelined is not None
        else config.transport in ("socket-pipelined", "socket-process")
    )
    if config.transport == "socket-process":
        style = "process"  # one OS process (one core) per cache node
    else:
        style = config.server_style or (
            "eventloop" if config.transport == "socket-pipelined" else "threaded"
        )
    return f"{'pipelined' if pipelined else 'pooled'}+{style}"
