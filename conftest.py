"""Pytest root conftest: make the in-tree package importable.

This mirrors an editable install (``pip install -e .``) without requiring
one, so the test and benchmark suites run directly from a source checkout.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
