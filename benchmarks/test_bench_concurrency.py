"""Throughput-vs-threads scaling of the concurrent request path.

The claim under test: with the pooled socket transport and the thread-safe
cache tier, K worker threads (each its own ``TxCacheClient``, the paper's
one-library-per-application-server topology) overlap their cache RPCs and
wall-clock throughput scales with K, while a single thread is bound by one
round trip at a time.  The socket runs model the LAN round trip of the
paper's gigabit testbed (see ``CacheServerProcess.simulated_latency_seconds``)
— on bare loopback an RPC is pure CPU under the GIL and *no* transport could
scale, which the in-process series documents.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import concurrent_churn, concurrent_clients


def test_concurrent_clients_scaling_curve(benchmark):
    """Socket transport: >= 1.8x ops/sec at 4 threads vs 1 thread."""

    def run():
        return concurrent_clients(
            thread_counts=(1, 2, 4, 8), interactions_per_thread=300
        )

    result = run_once(benchmark, run)
    print("\n" + result.format_table())

    for transport in ("inprocess", "socket"):
        for point in result.results[transport]:
            assert point.errors == 0
            assert point.interactions == point.threads * 300

    socket_scaling = result.scaling("socket")
    at_4_threads = socket_scaling[result.thread_counts.index(4)]
    # The headline claim of the concurrency refactor: pooled connections
    # genuinely overlap RPCs.  Measured ~3.5x on a single-core container;
    # 1.8x leaves room for scheduler noise without masking a regression to
    # the old one-socket-one-lock transport (which measures ~1.0x).
    assert at_4_threads >= 1.8, f"socket scaling at 4 threads: {at_4_threads:.2f}x"
    # More threads must never collapse below the 1-thread baseline.
    assert min(socket_scaling) >= 0.9


def test_concurrent_churn_crash_rejoin_under_load(benchmark):
    """A crash + warm rejoin with 4 threads driving traffic stays clean."""

    def run():
        return concurrent_churn(threads=4, interactions_per_thread=300)

    result = run_once(benchmark, run)
    print("\n" + result.format_table())

    for point in (result.baseline, result.churned):
        assert point.errors == 0
        assert point.interactions == 4 * 300
    # The crash was detected and evicted while traffic flowed...
    assert result.churned.nodes_evicted >= 1
    # ...and with R=2 the surviving replicas cover the dead node's keys, so
    # no read had to degrade to a synthetic miss.
    assert result.churned.degraded_lookups == 0
