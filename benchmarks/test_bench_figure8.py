"""Figure 8: breakdown of cache misses by type.

Paper shape: consistency misses are by a large margin the least common type
in every configuration (at most a few percent of misses), the 64 MB cache is
dominated by capacity/staleness misses, and the disk-bound configuration has
the largest share of compulsory misses.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import figure8
from repro.core.stats import MissType


def test_figure8_miss_breakdown(benchmark, settings):
    result = run_once(benchmark, figure8, settings=settings)
    print("\n" + result.format_table())

    assert len(result.columns) == 4
    for column, breakdown in zip(result.columns, result.breakdowns):
        total = sum(breakdown.values())
        assert total == 0.0 or abs(total - 1.0) < 1e-6

        consistency = breakdown[MissType.CONSISTENCY]
        # Consistency misses are the least common type by a large margin.
        assert consistency <= 0.25, f"{column}: consistency misses too common"
        assert consistency <= breakdown[MissType.COMPULSORY] + 1e-9
        assert consistency <= breakdown[MissType.STALE_OR_CAPACITY] + 0.05

    by_column = dict(zip(result.columns, result.breakdowns))
    small_cache = by_column["in-mem 64MB / 30s"]
    large_cache = by_column["in-mem 512MB / 30s"]
    # The small cache is dominated by capacity/staleness misses, much more so
    # than the large cache (paper: 95.5% vs 59%).
    assert small_cache[MissType.STALE_OR_CAPACITY] > large_cache[MissType.STALE_OR_CAPACITY]
    assert small_cache[MissType.STALE_OR_CAPACITY] > 0.4
