"""Open-loop benchmark smoke: a short fixed-rate sweep on the fast stack.

Two claims under test.  First, the open-loop machinery works end to end at
benchmark scale: a small rate sweep on ``socket-pipelined`` + binary
completes with zero errors, absorbs the low offered rates, and produces
monotone percentile data.  Second, the ``figures-openloop`` experiment
emits a ``BENCH_figures.json`` document that passes the schema validator —
the same check CI runs against the example script, kept here so a schema
drift fails fast in the test suite too.

Wall-clock throughput numbers land in ``BENCH_wire.json`` (section
``openloop``) to extend the perf trajectory; the figure curves themselves
are appended to ``BENCH_figures.json`` by the experiment.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import figures_openloop, repair_openloop
from repro.bench.loadgen import OpenLoopConfig, capacity_report, run_rate_sweep
from repro.bench.perflog import (
    BENCH_FIGURES_FILENAME,
    load_benchmark,
    record_wire_benchmark,
    validate_figures_document,
)

#: 2 worker processes x 4 threads against 2 cache nodes on the fast wire
#: stack; rates low enough that a small CI runner absorbs the first and the
#: sweep logic (knee, SLO point) has real data to chew on.
SWEEP_RATES = [400.0, 1200.0]


def test_open_loop_rate_sweep_on_fast_stack(benchmark):
    config = OpenLoopConfig(
        processes=2,
        threads_per_process=4,
        transport="socket-pipelined",
        wire_codec="binary",
        seed=7,
        label="openloop-smoke",
    )

    def run():
        return run_rate_sweep(config, rates=SWEEP_RATES, seconds_per_point=1.5)

    sweep = run_once(benchmark, run)
    print("\n" + sweep.format_table())
    assert len(sweep.points) == len(SWEEP_RATES)
    for point in sweep.points:
        assert point.errors == 0
        assert point.achieved_goodput > 0
        assert 0.0 < point.p50 <= point.p95 <= point.p99 <= point.p999
    # 400 ops/s across 8 workers is far below saturation: the system must
    # absorb it (the knee exists), or the open loop is not actually pacing.
    knee = sweep.knee()
    assert knee is not None
    assert knee.offered_rate >= SWEEP_RATES[0]
    model = capacity_report(sweep, cache_nodes=2, driver_cores=2)
    assert model is not None and model.concurrent_users > 0
    record_wire_benchmark(
        "openloop",
        {
            "transport": sweep.transport,
            "rates": SWEEP_RATES,
            "points": [
                {
                    "offered_rate": point.offered_rate,
                    "achieved_goodput": round(point.achieved_goodput, 1),
                    "p50_ms": round(point.p50 * 1e3, 3),
                    "p99_ms": round(point.p99 * 1e3, 3),
                }
                for point in sweep.points
            ],
            "knee_ops_per_second": round(knee.achieved_goodput, 1),
        },
    )


def test_figures_openloop_smoke_emits_valid_document(benchmark, tmp_path):
    """The CI smoke contract: a smoke-sized figures-openloop run writes a
    BENCH_figures.json that passes :func:`validate_figures_document`."""
    target = str(tmp_path / BENCH_FIGURES_FILENAME)

    def run():
        return figures_openloop(smoke=True, path=target)

    result = run_once(benchmark, run)
    assert result.recorded_path == target
    assert result.transport == "pipelined+eventloop"
    document = load_benchmark(BENCH_FIGURES_FILENAME, path=target)
    problems = validate_figures_document(document)
    assert problems == [], f"schema problems: {problems}"
    # The capacity model rode along from the 512MB sweep.
    assert document["sections"]["capacity"]["entries"][-1]["data"]["concurrent_users"] > 0


def test_repair_openloop_smoke_budgeted_plane_matches_the_sweep(benchmark):
    """The repair-interference experiment runs end to end at smoke scale.

    Structural contract only — the p99 ratios are machine-sensitive and are
    asserted nowhere; what must hold everywhere is that all three scenarios
    complete the full schedule without errors, both repair scenarios
    re-replicate exactly the same damaged entries, and the budgeted run
    actually went through the maintenance plane (windows elapsed, repair
    spread over real time) rather than degenerating into a synchronous
    sweep.
    """

    def run():
        return repair_openloop(smoke=True)

    result = run_once(benchmark, run)
    print("\n" + result.format_table())
    assert [r.label for r in result.runs] == [
        "no repair", "synchronous sweep", "budgeted plane",
    ]
    assert result.damaged > 0
    expected_arrivals = int(result.offered_rate * 1.5)  # the smoke schedule
    for scenario in result.runs:
        assert scenario.stats.errors == 0
        assert scenario.stats.completed == expected_arrivals
        assert scenario.p50 > 0.0
    baseline = result.run_named("no repair")
    sync = result.run_named("synchronous sweep")
    budgeted = result.run_named("budgeted plane")
    assert baseline.repaired == 0
    assert sync.repaired == budgeted.repaired == result.damaged
    # The budgeted run really was budgeted: the plane's clock saw multiple
    # refill windows and the repair stretched past the sweep's duration.
    assert budgeted.budget_windows > 1
    assert budgeted.repair_seconds > sync.repair_seconds > 0.0
