"""Node-churn benchmark: hit-rate recovery after a planned cache-node join.

Acceptance property of the elasticity subsystem: with live key migration a
join is invisible — the hit rate stays within a few points of the no-churn
baseline — while a cold join shows a miss trough over the remapped slice
that only refills with traffic.
"""

from __future__ import annotations

from repro.bench.experiments import node_churn

from conftest import run_once


def test_node_churn_recovery(benchmark, settings):
    result = run_once(benchmark, node_churn, settings=settings)
    print()
    print(result.format_table())

    baseline = result.baseline
    migrated = result.with_migration
    cold = result.without_migration

    # One membership epoch per join; only the migrating run ships entries.
    assert migrated.membership_epochs == 1
    assert cold.membership_epochs == 1
    assert migrated.entries_migrated > 0
    assert cold.entries_migrated == 0
    assert baseline.membership_epochs == 0

    # With migration the join is invisible: overall hit rate and the
    # post-join recovery stay within a few points of the baseline.
    assert migrated.hit_rate >= baseline.hit_rate - 0.03
    assert result.recovered(migrated) >= result.recovered(baseline) - 0.03
    assert result.trough(migrated) >= result.trough(baseline) - 0.03

    # Without migration the remapped slice cold-starts: a visible trough
    # below the migrated run, and a lower overall hit rate.
    assert result.trough(cold) <= result.trough(migrated) - 0.02
    assert cold.hit_rate <= migrated.hit_rate - 0.01

    # No failures were involved in a planned join.
    assert migrated.degraded_lookups == 0
    assert migrated.nodes_evicted == 0
