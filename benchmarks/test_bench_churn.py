"""Node-churn benchmarks: joins, crashes, and rolling restarts.

Acceptance properties of the elasticity subsystem:

* a planned join with live key migration is invisible (hit rate within a few
  points of the no-churn baseline), while a cold join shows a miss trough;
* an *unplanned crash* with R-way replication loses no cached state — the
  hit-rate timeline shows no cold-miss trough — while the unreplicated run
  loses the dead node's slice and dips until traffic refills it;
* a rolling restart (crash + warm rejoin of every node in turn) is covered
  by replication during each downtime window.
"""

from __future__ import annotations

from repro.bench.experiments import crash_churn, node_churn, rolling_restart

from conftest import run_once


def test_node_churn_recovery(benchmark, settings):
    result = run_once(benchmark, node_churn, settings=settings)
    print()
    print(result.format_table())

    baseline = result.baseline
    migrated = result.with_migration
    cold = result.without_migration

    # One membership epoch per join; only the migrating run ships entries.
    assert migrated.membership_epochs == 1
    assert cold.membership_epochs == 1
    assert migrated.entries_migrated > 0
    assert cold.entries_migrated == 0
    assert baseline.membership_epochs == 0

    # With migration the join is invisible: overall hit rate and the
    # post-join recovery stay within a few points of the baseline.
    assert migrated.hit_rate >= baseline.hit_rate - 0.03
    assert result.recovered(migrated) >= result.recovered(baseline) - 0.03
    assert result.trough(migrated) >= result.trough(baseline) - 0.03

    # Without migration the remapped slice cold-starts: a visible trough
    # below the migrated run, and a lower overall hit rate.
    assert result.trough(cold) <= result.trough(migrated) - 0.02
    assert cold.hit_rate <= migrated.hit_rate - 0.01

    # No failures were involved in a planned join.
    assert migrated.degraded_lookups == 0
    assert migrated.nodes_evicted == 0


def test_crash_with_replication_has_no_cold_miss_trough(benchmark, settings):
    """Tier-2 acceptance: with R=2, killing a cache node mid-workload loses
    no cached state — the crash timeline shows no cold-miss trough and the
    replicated hit rate is at least the unreplicated one."""
    result = run_once(benchmark, crash_churn, settings=settings)
    print()
    print(result.format_table())

    baseline = result.baseline
    replicated = result.replicated
    unreplicated = result.unreplicated

    # The crash was detected and evicted in both crashing runs.
    assert replicated.nodes_evicted == 1
    assert unreplicated.nodes_evicted == 1
    assert replicated.membership_epochs == 1

    # Zero loss: the replicated crash run never degrades a lookup (some
    # replica always answers) and its hit-rate curve shows no trough below
    # the no-crash baseline.
    assert replicated.degraded_lookups == 0
    assert result.trough(replicated) >= result.trough(baseline) - 0.02
    assert result.recovered(replicated) >= result.recovered(baseline) - 0.02
    assert replicated.hit_rate >= baseline.hit_rate - 0.02

    # The unreplicated run loses the dead node's slice: replicated crash
    # hit-rate >= unreplicated, and the unreplicated timeline dips.
    assert replicated.hit_rate >= unreplicated.hit_rate
    assert result.trough(unreplicated) <= result.trough(replicated) - 0.02


def test_rolling_restart_is_covered_by_replication(benchmark, settings):
    """Crash + warm rejoin of every node in turn: replication covers each
    downtime window, so the whole restart stays near the baseline; without
    replication every restart cold-starts a slice."""
    result = run_once(benchmark, rolling_restart, settings=settings)
    print()
    print(result.format_table())

    # Two epochs per restarted node: the crash eviction and the rejoin.
    restarted = len(result.events) // 2
    assert result.replicated.membership_epochs == 2 * restarted
    assert result.unreplicated.membership_epochs == 2 * restarted
    # The warm rejoins actually migrated entries back onto the restarts.
    assert result.replicated.entries_migrated > 0

    assert result.replicated.hit_rate >= result.baseline.hit_rate - 0.02
    assert result.trough(result.replicated) >= result.trough(result.baseline) - 0.02
    assert result.replicated.hit_rate >= result.unreplicated.hit_rate
    assert result.trough(result.unreplicated) <= result.trough(result.replicated) - 0.02
