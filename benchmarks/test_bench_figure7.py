"""Figure 7: impact of the staleness limit on peak throughput.

Paper shape: even a small staleness limit (5-10 s) provides a significant
benefit over demanding near-fresh data, and the benefit levels off by about
30 seconds.  Throughput is reported relative to the no-caching baseline.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import figure7

STALENESS_POINTS = [1, 5, 15, 30, 60]


def test_figure7_staleness_sweep(benchmark, settings):
    result = run_once(
        benchmark,
        figure7,
        settings=settings,
        staleness_limits=STALENESS_POINTS,
        include_disk_bound=True,
    )
    print("\n" + result.format_table())

    series = result.in_memory_relative
    assert len(series) == len(STALENESS_POINTS)
    # Caching beats the baseline at every staleness limit.
    assert all(value > 1.0 for value in series)
    # Larger staleness limits never hurt much and help overall.
    assert series[-1] >= series[0]
    # The benefit diminishes: most of the gain is already there by 30 s.
    gain_to_30 = series[STALENESS_POINTS.index(30)] - series[0]
    gain_after_30 = series[-1] - series[STALENESS_POINTS.index(30)]
    assert gain_after_30 <= max(0.5, gain_to_30)

    disk_series = result.disk_bound_relative
    assert all(value > 0.9 for value in disk_series)
    assert disk_series[-1] >= disk_series[0] * 0.95
