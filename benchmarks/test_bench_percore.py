"""Per-core cache nodes: process-hosted vs thread-hosted goodput.

The tentpole claim of the per-core PR: N thread-hosted cache nodes share
one interpreter (one GIL), so serving capacity stops scaling with node
count; N process-hosted nodes (``transport="socket-process"``) each own a
core, so the same machine scales with cores.  The ``percore-openloop``
experiment measures both hostings at a fixed offered rate over node count
∈ {1, 2, 4} and appends the curve to ``BENCH_wire.json`` (section
``percore``).

The scaling assertion — process-hosted goodput ≥ 1.15× thread-hosted at 4
nodes — only holds where there are cores to scale onto, so it is gated on
``os.cpu_count() >= PERCORE_MIN_CORES``; small runners still run the smoke
cell and validate the recorded schema, so a schema drift fails everywhere.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.bench.experiments import PERCORE_MIN_CORES, percore_openloop
from repro.bench.perflog import BENCH_WIRE_FILENAME, latest, load_benchmark

#: Every measured point must report the full acceptance currency.
PERCORE_POINT_KEYS = (
    "hosting",
    "transport",
    "nodes",
    "offered_rate",
    "achieved_goodput",
    "p50_ms",
    "p99_ms",
    "queue_wait_p99_ms",
    "service_p99_ms",
    "hit_rate",
    "errors",
)


def test_percore_openloop_records_curve_and_scales_on_multicore(benchmark):
    multicore = (os.cpu_count() or 1) >= PERCORE_MIN_CORES
    # Small runners measure one smoke cell per hosting (schema, not
    # scaling); multicore runners sweep the full {1,2,4}-node curve.
    result = run_once(benchmark, percore_openloop, smoke=not multicore)
    print("\n" + result.format_table())

    assert result.recorded_path
    document = load_benchmark(BENCH_WIRE_FILENAME, result.recorded_path)
    data = latest(document, "percore")
    assert data is not None
    assert data["cpu_count"] == result.cpu_count
    assert data["node_counts"] == result.node_counts
    points = data["points"]
    assert len(points) == 2 * len(result.node_counts)  # both hostings per count
    for point in points:
        for key in PERCORE_POINT_KEYS:
            assert key in point, key
        assert point["errors"] == 0
        assert point["achieved_goodput"] > 0

    if result.scaling_assertable:
        speedup = result.process_speedup_at(4)
        print(f"process-hosted over thread-hosted at 4 nodes: {speedup:.2f}x")
        assert speedup >= 1.15
    else:
        assert "process_speedup_at_4_nodes" not in data or not multicore
