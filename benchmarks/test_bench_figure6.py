"""Figure 6: cache hit rate vs cache size.

Paper shapes: the in-memory hit rate climbs steeply until the cache reaches
the working-set size and then grows slowly (27%-90% in the paper); the
disk-bound configuration reaches a high hit rate even with a comparatively
small cache, but much of the benefit comes from the long tail.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import figure6


def test_figure6a_in_memory_hit_rate(benchmark, settings):
    result = run_once(
        benchmark, figure6, "in-memory", settings=settings, cache_points=[64, 256, 512, 1024]
    )
    print("\n" + result.format_hit_rate_table())

    hit_rates = result.hit_rates
    # Hit rate grows with cache size and spans a wide range.
    for smaller, larger in zip(hit_rates, hit_rates[1:]):
        assert larger >= smaller - 0.02
    assert hit_rates[0] < hit_rates[-1]
    assert 0.15 <= hit_rates[0] <= 0.65
    assert 0.55 <= hit_rates[-1] <= 0.98


def test_figure6b_disk_bound_hit_rate(benchmark, settings):
    result = run_once(
        benchmark, figure6, "disk-bound", settings=settings, cache_points=[1, 5, 9]
    )
    print("\n" + result.format_hit_rate_table())

    hit_rates = result.hit_rates
    assert hit_rates[-1] >= hit_rates[0]
    # Even the small cache captures the hot set (paper: high hit rates
    # throughout), but hit rate alone does not determine throughput.
    assert hit_rates[0] >= 0.2
    assert hit_rates[-1] >= 0.4
