"""Section 8.1: overhead of the database modifications.

The paper compared stock PostgreSQL against its modified version (validity
interval tracking + invalidation tags) and found no observable throughput
difference.  These benchmarks measure the reproduction's executor in both
modes over an identical query stream, plus the incremental cost of vacuuming
with pinned snapshots retained.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.rubis.datagen import IN_MEMORY_CONFIG, populate_database
from repro.apps.rubis.schema import create_rubis_schema
from repro.bench.experiments import validity_tracking_overhead
from repro.clock import ManualClock
from repro.db.database import Database
from repro.db.query import Eq, Select


def _build_database(track_validity: bool) -> Database:
    database = Database(clock=ManualClock(), track_validity=track_validity)
    create_rubis_schema(database)
    populate_database(database, IN_MEMORY_CONFIG.scaled(400), seed=11)
    return database


def _query_stream(database: Database, count: int = 500) -> None:
    rng = random.Random(11)
    item_ids = [v.values["id"] for v in database.table("items").scan_versions()]
    transaction = database.begin_ro()
    for _ in range(count):
        transaction.query(Select("items", Eq("id", rng.choice(item_ids))))
    transaction.commit()


@pytest.fixture(scope="module")
def stock_database():
    return _build_database(track_validity=False)


@pytest.fixture(scope="module")
def modified_database():
    return _build_database(track_validity=True)


def test_stock_database_query_stream(benchmark, stock_database):
    benchmark(_query_stream, stock_database)


def test_modified_database_query_stream(benchmark, modified_database):
    benchmark(_query_stream, modified_database)


def test_validity_tracking_overhead_report(benchmark):
    result = benchmark.pedantic(
        validity_tracking_overhead, kwargs={"queries": 1500}, rounds=1, iterations=1
    )
    print("\n" + result.format_table())
    # The paper saw no observable difference; the pure-Python executor pays a
    # measurable but modest bookkeeping cost.  Fail if it ever becomes large.
    assert result.overhead_fraction < 1.5
