"""Transport overhead: in-process calls vs real networked cache servers.

Two claims are checked here:

* **Simulated results are transport-invariant.**  The benchmark figures are
  derived from the cost model over *what happened* (queries, hits, misses),
  not from Python wall-clock time, so running the same configuration with
  ``transport="socket"`` must reproduce the in-process throughput and hit
  rate exactly.  This is what guarantees the transport refactor cannot
  regress the Figure 5 results (which run in-process with zero RPC cost).
* **Real overhead is visible and batching pays.**  A microbenchmark reports
  the wall-clock cost of cache operations over TCP relative to in-process
  calls, and that a batched ``multi_lookup`` round trip amortizes it.
"""

from __future__ import annotations

import time

import pytest

from benchmarks.conftest import run_once
from repro.apps.rubis.datagen import IN_MEMORY_CONFIG
from repro.bench.costmodel import CostParameters
from repro.bench.driver import BenchmarkConfig, run_benchmark
from repro.cache.cluster import CacheCluster
from repro.cache.entry import LookupRequest
from repro.clock import ManualClock
from repro.interval import Interval

#: A deliberately small configuration: the socket run replays every cache
#: operation as a real RPC, so this keeps the benchmark in seconds.
def _config(transport: str, rpc_cost_seconds: float = 0.0) -> BenchmarkConfig:
    return BenchmarkConfig(
        database_config=IN_MEMORY_CONFIG,
        cache_size_bytes=512 * 1024,
        scale=400,
        sessions=8,
        warmup_interactions=200,
        measure_interactions=400,
        transport=transport,
        cost_parameters=CostParameters(rpc_cost_seconds=rpc_cost_seconds),
        label=f"transport-{transport}",
        seed=3,
    )


def test_socket_transport_reproduces_in_process_results(benchmark):
    """Same workload, same figures, whichever transport serves the cache."""

    def run_pair():
        return run_benchmark(_config("inprocess")), run_benchmark(_config("socket"))

    inprocess, socket_result = run_once(benchmark, run_pair)
    print(
        f"\nin-process: {inprocess.summary()}"
        f"\nsocket:     {socket_result.summary()}"
    )
    assert socket_result.peak_throughput == pytest.approx(inprocess.peak_throughput)
    assert socket_result.hit_rate == pytest.approx(inprocess.hit_rate)
    assert socket_result.miss_counts == inprocess.miss_counts
    assert socket_result.bottleneck == inprocess.bottleneck


def test_rpc_cost_model_charges_batched_round_trips_once(benchmark):
    """A nonzero rpc_cost_seconds lowers throughput; batching bounds the hit.

    Every cacheable call issues at most two round trips (one batched
    lookup+probe, one put on a miss), so the throughput penalty of pricing
    RPCs stays well below what per-key charging would produce."""

    def run_pair():
        return (
            run_benchmark(_config("inprocess")),
            run_benchmark(_config("inprocess", rpc_cost_seconds=2e-3)),
        )

    free, priced = run_once(benchmark, run_pair)
    print(
        f"\nrpc cost 0:    {free.summary()}"
        f"\nrpc cost 2ms:  {priced.summary()}"
    )
    # Pricing RPCs makes the web tier (which blocks on them) the bottleneck
    # and costs throughput...
    assert priced.peak_throughput < free.peak_throughput
    assert priced.bottleneck == "web"
    # ...but the same workload executed (only the charge differs), and
    # batching keeps the penalty bounded: at most two round trips per
    # cacheable call, not one per key examined.
    assert priced.hit_rate == pytest.approx(free.hit_rate)
    assert priced.peak_throughput > free.peak_throughput * 0.2


def test_wire_overhead_microbenchmark(benchmark):
    """Report the per-op wall cost of TCP framing vs direct calls."""
    OPS = 2000

    def timed_trace(kind: str):
        cluster = CacheCluster(
            node_count=2, capacity_bytes_per_node=4 * 1024 * 1024,
            clock=ManualClock(), transport=kind,
        )
        try:
            start = time.perf_counter()
            for i in range(OPS):
                cluster.put(f"key-{i % 500}", {"i": i}, Interval(0, i + 1))
            for i in range(OPS):
                cluster.lookup(f"key-{i % 500}", 0, i)
            singles = time.perf_counter() - start
            start = time.perf_counter()
            for i in range(0, OPS, 10):
                cluster.multi_lookup(
                    [LookupRequest(f"key-{(i + j) % 500}", 0, i) for j in range(10)]
                )
            batched = time.perf_counter() - start
            return singles, batched
        finally:
            cluster.close()

    def best_of(rounds, kind):
        # Min over repeats: the standard microbenchmark noise filter, so a
        # scheduler hiccup during one trace cannot flip the comparisons.
        times = [timed_trace(kind) for _ in range(rounds)]
        return tuple(min(values) for values in zip(*times))

    def run_both():
        return best_of(2, "inprocess"), best_of(2, "socket")

    (in_singles, in_batched), (sock_singles, sock_batched) = run_once(benchmark, run_both)
    per_op_overhead = (sock_singles - in_singles) / (2 * OPS)
    print(
        f"\nin-process:  {2 * OPS} ops in {in_singles * 1e3:7.1f} ms, "
        f"{OPS // 10} batched lookups in {in_batched * 1e3:7.1f} ms"
        f"\nsocket:      {2 * OPS} ops in {sock_singles * 1e3:7.1f} ms, "
        f"{OPS // 10} batched lookups in {sock_batched * 1e3:7.1f} ms"
        f"\nper-op socket overhead: {per_op_overhead * 1e6:7.1f} us"
    )
    # The networked path costs more per operation...
    assert sock_singles > in_singles
    # ...and batching 10 keys per frame beats 10 single round trips.
    assert sock_batched < sock_singles
