"""Transport overhead: in-process calls vs real networked cache servers.

Two claims are checked here:

* **Simulated results are transport-invariant.**  The benchmark figures are
  derived from the cost model over *what happened* (queries, hits, misses),
  not from Python wall-clock time, so running the same configuration with
  ``transport="socket"`` must reproduce the in-process throughput and hit
  rate exactly.  This is what guarantees the transport refactor cannot
  regress the Figure 5 results (which run in-process with zero RPC cost).
* **Real overhead is visible and batching pays.**  A microbenchmark reports
  the wall-clock cost of cache operations over TCP relative to in-process
  calls, and that a batched ``multi_lookup`` round trip amortizes it.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from benchmarks.conftest import run_once
from repro.apps.rubis.datagen import IN_MEMORY_CONFIG
from repro.bench.costmodel import CostParameters
from repro.bench.driver import BenchmarkConfig, run_benchmark
from repro.bench.perflog import record_wire_benchmark
from repro.cache.cluster import CacheCluster
from repro.cache.entry import EntryRecord, LookupRequest, LookupResult
from repro.cache.netserver import CacheServerProcess, SocketTransport
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm import wire
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval

#: A deliberately small configuration: the socket run replays every cache
#: operation as a real RPC, so this keeps the benchmark in seconds.
def _config(transport: str, rpc_cost_seconds: float = 0.0) -> BenchmarkConfig:
    return BenchmarkConfig(
        database_config=IN_MEMORY_CONFIG,
        cache_size_bytes=512 * 1024,
        scale=400,
        sessions=8,
        warmup_interactions=200,
        measure_interactions=400,
        transport=transport,
        cost_parameters=CostParameters(rpc_cost_seconds=rpc_cost_seconds),
        label=f"transport-{transport}",
        seed=3,
    )


def test_socket_transport_reproduces_in_process_results(benchmark):
    """Same workload, same figures, whichever transport serves the cache."""

    def run_pair():
        return run_benchmark(_config("inprocess")), run_benchmark(_config("socket"))

    inprocess, socket_result = run_once(benchmark, run_pair)
    print(
        f"\nin-process: {inprocess.summary()}"
        f"\nsocket:     {socket_result.summary()}"
    )
    assert socket_result.peak_throughput == pytest.approx(inprocess.peak_throughput)
    assert socket_result.hit_rate == pytest.approx(inprocess.hit_rate)
    assert socket_result.miss_counts == inprocess.miss_counts
    assert socket_result.bottleneck == inprocess.bottleneck


def test_rpc_cost_model_charges_batched_round_trips_once(benchmark):
    """A nonzero rpc_cost_seconds lowers throughput; batching bounds the hit.

    Every cacheable call issues at most two round trips (one batched
    lookup+probe, one put on a miss), so the throughput penalty of pricing
    RPCs stays well below what per-key charging would produce."""

    def run_pair():
        return (
            run_benchmark(_config("inprocess")),
            run_benchmark(_config("inprocess", rpc_cost_seconds=2e-3)),
        )

    free, priced = run_once(benchmark, run_pair)
    print(
        f"\nrpc cost 0:    {free.summary()}"
        f"\nrpc cost 2ms:  {priced.summary()}"
    )
    # Pricing RPCs makes the web tier (which blocks on them) the bottleneck
    # and costs throughput...
    assert priced.peak_throughput < free.peak_throughput
    assert priced.bottleneck == "web"
    # ...but the same workload executed (only the charge differs), and
    # batching keeps the penalty bounded: at most two round trips per
    # cacheable call, not one per key examined.
    assert priced.hit_rate == pytest.approx(free.hit_rate)
    assert priced.peak_throughput > free.peak_throughput * 0.2


def test_wire_overhead_microbenchmark(benchmark):
    """Report the per-op wall cost of TCP framing vs direct calls."""
    OPS = 2000

    def timed_trace(kind: str):
        cluster = CacheCluster(
            node_count=2, capacity_bytes_per_node=4 * 1024 * 1024,
            clock=ManualClock(), transport=kind,
        )
        try:
            start = time.perf_counter()
            for i in range(OPS):
                cluster.put(f"key-{i % 500}", {"i": i}, Interval(0, i + 1))
            for i in range(OPS):
                cluster.lookup(f"key-{i % 500}", 0, i)
            singles = time.perf_counter() - start
            start = time.perf_counter()
            for i in range(0, OPS, 10):
                cluster.multi_lookup(
                    [LookupRequest(f"key-{(i + j) % 500}", 0, i) for j in range(10)]
                )
            batched = time.perf_counter() - start
            return singles, batched
        finally:
            cluster.close()

    def best_of(rounds, kind):
        # Min over repeats: the standard microbenchmark noise filter, so a
        # scheduler hiccup during one trace cannot flip the comparisons.
        times = [timed_trace(kind) for _ in range(rounds)]
        return tuple(min(values) for values in zip(*times))

    def run_both():
        return best_of(2, "inprocess"), best_of(2, "socket")

    (in_singles, in_batched), (sock_singles, sock_batched) = run_once(benchmark, run_both)
    per_op_overhead = (sock_singles - in_singles) / (2 * OPS)
    print(
        f"\nin-process:  {2 * OPS} ops in {in_singles * 1e3:7.1f} ms, "
        f"{OPS // 10} batched lookups in {in_batched * 1e3:7.1f} ms"
        f"\nsocket:      {2 * OPS} ops in {sock_singles * 1e3:7.1f} ms, "
        f"{OPS // 10} batched lookups in {sock_batched * 1e3:7.1f} ms"
        f"\nper-op socket overhead: {per_op_overhead * 1e6:7.1f} us"
    )
    # The networked path costs more per operation...
    assert sock_singles > in_singles
    # ...and batching 10 keys per frame beats 10 single round trips.
    assert sock_batched < sock_singles


def test_codec_framing_microbenchmark(benchmark, wire_counters):
    """Frames/sec and bytes copied, small-lookup vs large-extract payloads.

    Two claims: the legacy and multiplexed codecs are in the same cost
    class for the small frames of the request path (the mux header costs 9
    extra bytes, not a second pickling pass), and neither framing copies
    payload bytes in userspace — the old ``header + data`` concatenation is
    gone, so ``WIRE_COUNTERS.bytes_copied`` stays zero even for the
    multi-megabyte extract payloads of a migration.
    """
    small_payload = (
        "multi_lookup",
        ([LookupRequest(f"key-{i}", 0, 40) for i in range(4)],),
    )
    small_response = [
        LookupResult(hit=True, key=f"key-{i}", value={"row": i}, interval=Interval(0, 40))
        for i in range(4)
    ]
    large_payload = (
        [
            EntryRecord(key=f"key-{i}", value={"payload": "x" * 512}, interval=Interval(0))
            for i in range(2000)
        ],
        None,
    )

    def round_trips(encode, payload, rounds):
        start = time.perf_counter()
        for _ in range(rounds):
            buffers = encode(payload)
            body = b"".join(bytes(b) for b in buffers[1:])  # test-side reassembly
            wire.decode_body(0, body)
        return rounds / (time.perf_counter() - start)

    def run():
        legacy_small = round_trips(wire.encode_legacy_frame, small_payload, 3000)
        mux_small = round_trips(
            lambda p: wire.encode_mux_frame(7, wire.OPCODES["multi_lookup"], p),
            small_payload,
            3000,
        )
        mux_response = round_trips(
            lambda p: wire.encode_mux_frame(7, wire.OP_OK, p), small_response, 3000
        )
        legacy_large = round_trips(wire.encode_legacy_frame, large_payload, 30)
        mux_large = round_trips(
            lambda p: wire.encode_mux_frame(7, wire.OPCODES["install_entries"], p),
            large_payload,
            30,
        )
        copied = wire.WIRE_COUNTERS.bytes_copied
        return legacy_small, mux_small, mux_response, legacy_large, mux_large, copied

    legacy_small, mux_small, mux_response, legacy_large, mux_large, copied = run_once(
        benchmark, run
    )
    large_bytes = sum(
        len(bytes(b)) for b in wire.encode_legacy_frame(large_payload)
    )
    print(
        f"\nsmall lookup frame:  legacy {legacy_small:9,.0f}/s   mux {mux_small:9,.0f}/s"
        f"\nsmall result frame:  mux    {mux_response:9,.0f}/s"
        f"\nlarge extract frame: legacy {legacy_large:9,.0f}/s   mux {mux_large:9,.0f}/s"
        f"  ({large_bytes / 1e6:.1f} MB/frame)"
        f"\nencoder bytes copied: {copied} (payload copies eliminated)"
    )
    # Same cost class on the hot path: the mux header must not add a
    # second serialization pass.
    assert mux_small > legacy_small * 0.5
    # The encoders never copy payload bytes: WIRE_COUNTERS only tracks
    # encoder/sender-side copies (the b"".join above is test-side decode
    # plumbing and is not counted).
    assert copied == 0


def test_pipelined_transport_overhead_microbenchmark(benchmark):
    """Per-op wall cost of the pipelined wire path vs the pooled one.

    Single-caller round trips over loopback, against both server engines.
    The pipelined client adds a reader-thread rendezvous per RPC and the
    event-loop server adds its selector pass, so this measures the fixed
    price of the multiplexed path at concurrency 1 — the configuration it
    is *worst* at; the win shows up under concurrent callers
    (``benchmarks/test_bench_multiprocess.py``) where one socket carries
    every in-flight RPC.
    """
    from repro.cache.netserver import CacheServerProcess, SocketTransport
    from repro.cache.server import CacheServer

    OPS = 1500

    def timed(style, pipelined):
        server = CacheServer(name="wire", capacity_bytes=8 * 1024 * 1024, clock=ManualClock())
        with CacheServerProcess(server, style=style) as process:
            transport = SocketTransport(process.address, pipelined=pipelined)
            try:
                transport.put("k", {"v": 1}, Interval(0))
                start = time.perf_counter()
                for i in range(OPS):
                    transport.lookup("k", 0, 5)
                return time.perf_counter() - start
            finally:
                transport.close()

    def run():
        return {
            (style, pipelined): min(timed(style, pipelined) for _ in range(2))
            for style in ("threaded", "eventloop")
            for pipelined in (False, True)
        }

    times = run_once(benchmark, run)
    for (style, pipelined), elapsed in sorted(times.items()):
        mode = "pipelined" if pipelined else "pooled   "
        print(f"\n{style:9s} {mode}: {elapsed / OPS * 1e6:7.1f} us/op", end="")
    print()
    # The multiplexed path must stay in the same cost class as the pooled
    # one at concurrency 1 (its worst case): no hidden extra round trips.
    assert times[("eventloop", True)] < times[("threaded", False)] * 3.0


# ----------------------------------------------------------------------
# The three fast-wire fronts: binary codec, read lease, write coalescing
# ----------------------------------------------------------------------
#: The lookup shapes the binary codec was built for: (name, request args,
#: response) — a scalar hit, a row-dict hit (one users row), and a miss.
def _lookup_shapes():
    return [
        (
            "scalar-hit",
            ("user:12345", 0, 40),
            LookupResult(
                True,
                "user:12345",
                value=1234.5,
                interval=Interval(3, 40),
                raw_interval=Interval(3, None),
                tags=frozenset({InvalidationTag("users", "id", 12345)}),
                key_ever_stored=True,
            ),
        ),
        (
            "row-dict-hit",
            ("users:pk:123", 0, 40),
            LookupResult(
                True,
                "users:pk:123",
                value={"id": 123, "name": "user123", "region": 2, "score": 123.0},
                interval=Interval(11, 40),
                raw_interval=Interval(11, None),
                tags=frozenset({InvalidationTag("users", "id", 123)}),
                key_ever_stored=True,
            ),
        ),
        (
            "miss",
            ("users:pk:999", 0, 40),
            LookupResult(
                False, "users:pk:999", key_ever_stored=True, fresh_version_exists=True
            ),
        ),
    ]


def test_binary_codec_beats_pickle_on_lookup_round_trips(benchmark, wire_counters):
    """Tentpole claim #1: one lookup round trip (encode request + decode
    request + encode response + decode response) through the binary codec
    is at least 2x faster than through pickle, aggregated over the hot
    shapes.  The numbers land in BENCH_wire.json."""
    ROUNDS = 4000

    def timed_binary(request, response):
        # Exactly what crosses the wire: requests take the fixed lookup
        # args layout, responses the tagged record body.
        encode, decode = wire.encode_binary_body, wire.decode_binary_body
        enc_args, dec_args = wire.encode_binary_args, wire.decode_binary_args
        opcode = wire.OPCODES["lookup"]
        request_body = bytes(enc_args(opcode, request))
        response_body = bytes(encode(response))
        start = time.perf_counter()
        for _ in range(ROUNDS):
            enc_args(opcode, request)
            encode(response)
            dec_args(opcode, request_body)
            decode(response_body)
        return (time.perf_counter() - start) / ROUNDS

    def timed_pickle(request, response):
        protocol = wire.PICKLE_PROTOCOL
        dumps, loads = pickle.dumps, pickle.loads
        request_body = dumps(request, protocol)
        response_body = dumps(response, protocol)
        start = time.perf_counter()
        for _ in range(ROUNDS):
            dumps(request, protocol)
            dumps(response, protocol)
            loads(request_body)
            loads(response_body)
        return (time.perf_counter() - start) / ROUNDS

    def run():
        shapes = {}
        for name, request, response in _lookup_shapes():
            binary = min(timed_binary(request, response) for _ in range(3))
            pickled = min(timed_pickle(request, response) for _ in range(3))
            shapes[name] = (binary, pickled)
        return shapes

    shapes = run_once(benchmark, run)
    report = {}
    for name, (binary, pickled) in shapes.items():
        report[name] = {
            "binary_ns_per_roundtrip": round(binary * 1e9, 1),
            "pickle_ns_per_roundtrip": round(pickled * 1e9, 1),
            "speedup": round(pickled / binary, 2),
        }
        print(
            f"\n{name:13s} binary {binary * 1e9:7.0f} ns  "
            f"pickle {pickled * 1e9:7.0f} ns  ({pickled / binary:.2f}x)",
            end="",
        )
    total_binary = sum(b for b, _ in shapes.values())
    total_pickle = sum(p for _, p in shapes.values())
    aggregate = total_pickle / total_binary
    print(f"\naggregate speedup: {aggregate:.2f}x")
    record_wire_benchmark(
        "codec",
        {
            "roundtrip": "encode request + decode request + encode response + decode response",
            "shapes": report,
            "aggregate_speedup": round(aggregate, 2),
        },
    )
    # Per-decode round trips must not re-copy bodies through the counters.
    assert wire_counters.bytes_copied == 0
    # The acceptance bar: the hot-path codec earns its complexity.
    assert aggregate >= 2.0, f"binary/pickle aggregate speedup: {aggregate:.2f}x"


def _put_shapes():
    """Representative put requests: what a miss-filling client stores."""
    return [
        (
            "small-row",
            (
                "users:pk:42",
                {"id": 42, "name": "alice", "region": "eu"},
                Interval(10, 20),
                frozenset({InvalidationTag("users", "id", 42)}),
            ),
        ),
        (
            "page-row",
            (
                "pages:pk:7",
                {"id": 7, "payload": "x" * 128, "hits": 0},
                Interval(3, None),
                frozenset(),
            ),
        ),
        (
            "multi-tag",
            (
                "items:region:eu",
                {"id": 9, "price": 13.5, "region": "eu"},
                Interval(100, 250),
                frozenset(
                    {
                        InvalidationTag("items", "region", "eu"),
                        InvalidationTag("items", None, None),
                    }
                ),
            ),
        ),
    ]


def test_put_packed_layout_beats_pickle(benchmark):
    """Satellite of the open-loop PR: ``put`` — the miss-fill op, last hot
    op on the generic path — gets the fixed packed request layout.  One
    request cycle (encode + decode) through the packed layout must beat
    pickle; the delta lands in BENCH_wire.json as ``codec_put``."""
    ROUNDS = 4000
    opcode = wire.OPCODES["put"]

    def timed_binary(args):
        enc_args, dec_args = wire.encode_binary_args, wire.decode_binary_args
        body = bytes(enc_args(opcode, args))
        assert body[0] == 1  # the packed layout, not the tagged fallback
        start = time.perf_counter()
        for _ in range(ROUNDS):
            enc_args(opcode, args)
            dec_args(opcode, body)
        return (time.perf_counter() - start) / ROUNDS

    def timed_pickle(args):
        protocol = wire.PICKLE_PROTOCOL
        dumps, loads = pickle.dumps, pickle.loads
        body = dumps(args, protocol)
        start = time.perf_counter()
        for _ in range(ROUNDS):
            dumps(args, protocol)
            loads(body)
        return (time.perf_counter() - start) / ROUNDS

    def run():
        shapes = {}
        for name, args in _put_shapes():
            binary = min(timed_binary(args) for _ in range(3))
            pickled = min(timed_pickle(args) for _ in range(3))
            shapes[name] = (binary, pickled)
        return shapes

    shapes = run_once(benchmark, run)
    report = {}
    for name, (binary, pickled) in shapes.items():
        report[name] = {
            "binary_ns_per_cycle": round(binary * 1e9, 1),
            "pickle_ns_per_cycle": round(pickled * 1e9, 1),
            "speedup": round(pickled / binary, 2),
        }
        print(
            f"\n{name:13s} binary {binary * 1e9:7.0f} ns  "
            f"pickle {pickled * 1e9:7.0f} ns  ({pickled / binary:.2f}x)",
            end="",
        )
    total_binary = sum(b for b, _ in shapes.values())
    total_pickle = sum(p for _, p in shapes.values())
    aggregate = total_pickle / total_binary
    print(f"\nput aggregate speedup: {aggregate:.2f}x")
    record_wire_benchmark(
        "codec_put",
        {
            "cycle": "encode request + decode request (packed put layout)",
            "shapes": report,
            "aggregate_speedup": round(aggregate, 2),
        },
    )
    # The packed layout must win in aggregate; the value itself still rides
    # the tagged codec, so the win is bounded by the key/interval/tags
    # share of the body (measured ~1.26x, asserted with noise margin).
    assert aggregate >= 1.1, f"put packed/pickle aggregate speedup: {aggregate:.2f}x"


def test_mux_read_lease_drops_rpc_round_trip_latency(benchmark):
    """Tentpole claim #2: a single caller on the leased mux connection
    (reading its own response, binary codec) completes lookups faster than
    the PR-5 arrangement (reader-thread rendezvous, pickle bodies)."""
    OPS = 1500

    def timed(read_lease, codec):
        server = CacheServer(
            name="wire", capacity_bytes=8 * 1024 * 1024, clock=ManualClock()
        )
        with CacheServerProcess(server, style="eventloop", wire_codec=codec) as process:
            transport = SocketTransport(
                process.address,
                pipelined=True,
                wire_codec=codec,
                mux_read_lease=read_lease,
            )
            try:
                transport.put("k", {"v": 1}, Interval(0))
                start = time.perf_counter()
                for _ in range(OPS):
                    transport.lookup("k", 0, 5)
                return time.perf_counter() - start
            finally:
                transport.close()

    def measure():
        return {
            (read_lease, codec): min(timed(read_lease, codec) for _ in range(2))
            for read_lease in (False, True)
            for codec in ("pickle", "binary")
        }

    def run():
        # Best-of-2 on a miss, same policy as the multiprocess benchmarks:
        # the lease-vs-rendezvous margins are tight enough that one
        # scheduler stall on a shared runner can invert them transiently.
        times = measure()
        if not (
            times[(True, "binary")] < times[(False, "pickle")]
            and times[(True, "pickle")] < times[(False, "pickle")] * 1.1
        ):
            times = measure()
        return times

    times = run_once(benchmark, run)
    report = {}
    for (read_lease, codec), elapsed in sorted(times.items()):
        mode = "lease" if read_lease else "rendezvous"
        report[f"{mode}-{codec}"] = round(elapsed / OPS * 1e6, 2)
        print(f"\n{mode:10s} {codec:6s}: {elapsed / OPS * 1e6:7.1f} us/op", end="")
    print()
    record_wire_benchmark("rpc", {"us_per_lookup": report, "ops": OPS})
    # The full fast stack beats the PR-5 baseline on the same machine...
    assert times[(True, "binary")] < times[(False, "pickle")]
    # ...and the lease alone pays at equal codec (no reader-thread handoff).
    assert times[(True, "pickle")] < times[(False, "pickle")] * 1.1


def test_write_coalescing_reduces_sendmsg_calls_under_concurrency(benchmark):
    """Tentpole claim #3: with concurrent callers multiplexed on one
    socket, the coalescing engine answers the same workload in strictly
    fewer sendmsg syscalls (responses completing in one loop iteration
    share a gather)."""
    THREADS, OPS = 8, 300

    def timed(write_coalescing):
        server = CacheServer(
            name="node", capacity_bytes=8 * 1024 * 1024, clock=ManualClock()
        )
        with CacheServerProcess(
            server, style="eventloop", write_coalescing=write_coalescing
        ) as process:
            transport = SocketTransport(process.address, pipelined=True)
            try:
                for i in range(THREADS):
                    transport.put(f"k{i}", i, Interval(0))
                barrier = threading.Barrier(THREADS)

                def worker(index):
                    barrier.wait()
                    for _ in range(OPS):
                        assert transport.lookup(f"k{index}", 0, 5).hit

                threads = [
                    threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
                ]
                start = time.perf_counter()
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                elapsed = time.perf_counter() - start
            finally:
                transport.close()
        # Counter read after shutdown: the loop thread is joined, so the
        # total is exact (a live read races the final increments).
        return elapsed, process.sendmsg_calls

    def run():
        off = timed(False)
        on = timed(True)
        return off, on

    (off_time, off_calls), (on_time, on_calls) = run_once(benchmark, run)
    responses = THREADS * OPS
    print(
        f"\ncoalescing off: {off_calls:5d} sendmsg for {responses} responses,"
        f" {off_time * 1e3:7.1f} ms"
        f"\ncoalescing on:  {on_calls:5d} sendmsg for {responses} responses,"
        f" {on_time * 1e3:7.1f} ms"
    )
    record_wire_benchmark(
        "coalescing",
        {
            "responses": responses,
            "sendmsg_calls_off": off_calls,
            "sendmsg_calls_on": on_calls,
            "wall_ms_off": round(off_time * 1e3, 1),
            "wall_ms_on": round(on_time * 1e3, 1),
        },
    )
    assert on_calls < off_calls


def test_multi_lookup_encode_scratch_pins_allocations(benchmark):
    """The batch encode path allocates no new buffers after warm-up.

    Two claims from the per-core PR's codec satellite: encoding a batch of
    multi-lookup frames into the shared :class:`wire.EncodeScratch` is at
    least as fast as a fresh ``bytearray`` per request, and a whole run of
    frames touches exactly **one** allocation (``allocations == 1``) —
    the buffer grows monotonically and is never replaced mid-run.
    """
    from repro.cache.entry import LookupRequest

    opcode = wire.OPCODES["multi_lookup"]
    args = ([LookupRequest(f"key-{i}", 0, 40) for i in range(8)],)
    ROUNDS = 4000

    def fresh_buffers():
        start = time.perf_counter()
        for _ in range(ROUNDS):
            wire.encode_binary_args(opcode, args)
        return ROUNDS / (time.perf_counter() - start)

    def scratch_frames():
        scratch = wire.EncodeScratch()
        start = time.perf_counter()
        for request_id in range(ROUNDS):
            _header, body = scratch.encode_request_frame(request_id, opcode, args)
            body.release()
        return ROUNDS / (time.perf_counter() - start), scratch.allocations

    def run():
        return fresh_buffers(), *scratch_frames()

    fresh_rate, scratch_rate, allocations = run_once(benchmark, run)
    print(
        f"\nmulti-lookup encode: fresh buffer {fresh_rate:9,.0f}/s"
        f"   scratch {scratch_rate:9,.0f}/s   allocations={allocations}"
    )
    # The no-new-allocations pin: one buffer for the entire run.
    assert allocations == 1
    # And reuse must not cost throughput (generous bound: same cost class).
    assert scratch_rate > fresh_rate * 0.5
    record_wire_benchmark(
        "codec_scratch",
        {
            "rounds": ROUNDS,
            "batch_size": 8,
            "fresh_frames_per_second": round(fresh_rate),
            "scratch_frames_per_second": round(scratch_rate),
            "scratch_allocations": allocations,
        },
    )
