"""Shared fixtures for the benchmark suite.

Each paper experiment is wrapped in a pytest-benchmark test so the whole
evaluation regenerates with ``pytest benchmarks/ --benchmark-only``.  The
experiments drive full simulated workloads, so every benchmark runs exactly
one round (the variance of interest is across configurations, not across
repeated identical runs).
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench.experiments import ExperimentSettings  # noqa: E402
from repro.comm import wire  # noqa: E402


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Quick experiment settings shared by every figure benchmark."""
    return ExperimentSettings.quick()


@pytest.fixture
def wire_counters() -> wire.WireCounters:
    """The process-wide wire counters, reset before the test.

    Shared by the codec microbenchmarks: each starts from zero frames/bytes
    without repeating the reset (and without one benchmark's traffic
    polluting the next one's counter assertions).
    """
    wire.WIRE_COUNTERS.reset()
    return wire.WIRE_COUNTERS


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
