"""Figure 5: peak throughput vs cache size (plus the §8.1 speedup claims).

Paper shapes this harness checks:

* Figure 5(a), in-memory database: TxCache improves peak throughput by
  roughly 2.2-5.2x over the no-caching baseline, growing with cache size;
  the non-transactional "No consistency" cache is only slightly faster than
  TxCache.
* Figure 5(b), disk-bound database: speedups are smaller (roughly 1.8-3.2x
  in the paper) and keep growing with cache size.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import figure5


def test_figure5a_in_memory(benchmark, settings):
    result = run_once(benchmark, figure5, "in-memory", settings=settings)
    print("\n" + result.format_table())

    speedups = result.speedups
    # Caching always wins, by a factor in the right ballpark.
    assert all(s > 1.3 for s in speedups)
    assert 1.5 <= speedups[0] <= 4.0, "smallest cache speedup out of range"
    assert 3.0 <= speedups[-1] <= 8.0, "largest cache speedup out of range"
    # Throughput grows (or at least never meaningfully shrinks) with cache size.
    for smaller, larger in zip(speedups, speedups[1:]):
        assert larger >= smaller * 0.95
    # Consistency costs little: the non-transactional cache stays close to
    # TxCache in throughput (the paper places it slightly above; in this
    # simulation the two land within ~15% of each other) and never does
    # better on misses — it only avoids the rare consistency misses, so its
    # hit rate is at least as high.
    for txcache, no_consistency in zip(result.txcache, result.no_consistency):
        assert no_consistency is not None
        assert no_consistency.peak_throughput >= txcache.peak_throughput * 0.7
        assert no_consistency.peak_throughput <= txcache.peak_throughput * 1.5
        assert no_consistency.hit_rate >= txcache.hit_rate - 0.05


def test_figure5b_disk_bound(benchmark, settings):
    result = run_once(
        benchmark, figure5, "disk-bound", settings=settings, cache_points=[1, 3, 5, 7, 9]
    )
    print("\n" + result.format_table())

    speedups = result.speedups
    assert all(s >= 1.0 for s in speedups)
    assert speedups[-1] > speedups[0], "throughput should grow with cache size"
    assert 1.2 <= speedups[-1] <= 5.0
    # The disk-bound configuration benefits less than the in-memory one
    # (paper: 1.8-3.2x vs 2.2-5.2x).
    assert speedups[-1] < 4.5
