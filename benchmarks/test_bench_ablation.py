"""Ablation benchmarks for design choices called out in DESIGN.md.

* Lazy timestamp selection (pin sets) versus always demanding the freshest
  snapshot ("eager latest"): lazy selection should achieve a higher cache
  hit rate because transactions can serialize wherever cached data exists.
* The versioned cache (multiple entries per key with disjoint intervals)
  versus the effective behaviour with a very short staleness limit.
* Microbenchmarks of the cache server's core operations (lookup, put,
  invalidation processing), which the paper identifies as cheap relative to
  database work.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.apps.rubis.datagen import IN_MEMORY_CONFIG
from repro.bench.driver import BenchmarkConfig, run_benchmark
from repro.cache.server import CacheServer
from repro.clock import ManualClock
from repro.comm.multicast import InvalidationMessage
from repro.db.invalidation import InvalidationTag
from repro.interval import Interval


def _config(staleness: float, label: str) -> BenchmarkConfig:
    return BenchmarkConfig(
        database_config=IN_MEMORY_CONFIG,
        cache_size_bytes=512 * 1024,
        staleness=staleness,
        scale=150,
        sessions=12,
        warmup_interactions=700,
        measure_interactions=1200,
        seed=4,
        label=label,
    )


def test_lazy_vs_eager_timestamp_selection(benchmark):
    """Lazy selection (staleness window + pin sets) vs demanding freshness.

    With a 30 s staleness window the library may serialize a transaction in
    the recent past wherever cached data is available; with a 0 s window it
    effectively always picks the newest snapshot (eager selection), losing
    hits on recently invalidated data.
    """

    def run_pair():
        lazy = run_benchmark(_config(30.0, "lazy-30s"))
        eager = run_benchmark(_config(0.0, "eager-latest"))
        return lazy, eager

    lazy, eager = run_once(benchmark, run_pair)
    print(
        f"\nlazy (30s window): {lazy.peak_throughput:,.1f} req/s, hit rate {lazy.hit_rate:.1%}"
        f"\neager (latest only): {eager.peak_throughput:,.1f} req/s, hit rate {eager.hit_rate:.1%}"
    )
    assert lazy.hit_rate > eager.hit_rate
    assert lazy.peak_throughput > eager.peak_throughput


def test_staleness_window_value(benchmark):
    """A moderate staleness window captures most of the benefit (Figure 7's
    diminishing returns), so 30 s vs 120 s should be close."""

    def run_pair():
        moderate = run_benchmark(_config(30.0, "staleness-30"))
        generous = run_benchmark(_config(120.0, "staleness-120"))
        return moderate, generous

    moderate, generous = run_once(benchmark, run_pair)
    print(
        f"\n30s window: {moderate.peak_throughput:,.1f} req/s"
        f"\n120s window: {generous.peak_throughput:,.1f} req/s"
    )
    assert generous.peak_throughput >= moderate.peak_throughput * 0.9
    assert generous.peak_throughput <= moderate.peak_throughput * 1.6


# ----------------------------------------------------------------------
# Cache-server microbenchmarks
# ----------------------------------------------------------------------
@pytest.fixture()
def populated_server():
    server = CacheServer(capacity_bytes=64 * 1024 * 1024, clock=ManualClock())
    for i in range(5000):
        server.put(
            f"key-{i}",
            {"payload": "x" * 100, "index": i},
            Interval(0),
            frozenset({InvalidationTag.key("items", "id", i)}),
        )
    server.note_timestamp(10)
    return server


def test_cache_lookup_microbenchmark(benchmark, populated_server):
    counter = iter(range(10**9))

    def lookup():
        i = next(counter) % 5000
        return populated_server.lookup(f"key-{i}", 0, 10)

    result = benchmark(lookup)
    assert result is not None


def test_cache_put_microbenchmark(benchmark):
    server = CacheServer(capacity_bytes=256 * 1024 * 1024, clock=ManualClock())
    counter = iter(range(10**9))

    def put():
        i = next(counter)
        server.put(f"key-{i}", {"payload": "x" * 100}, Interval(0))

    benchmark(put)


def test_invalidation_processing_microbenchmark(benchmark, populated_server):
    counter = iter(range(11, 10**9))

    def invalidate():
        ts = next(counter)
        populated_server.process_invalidation(
            InvalidationMessage(timestamp=ts, tags=(InvalidationTag.key("items", "id", ts % 5000),))
        )

    benchmark(invalidate)
