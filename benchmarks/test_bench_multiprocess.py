"""Multi-process driver smoke: the pipelined wire path must beat the pool cap.

The claim under test is the headline of the fast-wire-path work: at equal
worker count, the PR-4 deployment default (4 pooled one-in-flight
connections per node) caps each application server at ``pool x nodes``
in-flight RPCs, so with workers beyond the cap the excess RPCs serialize
behind the sockets.  The pipelined transport + event-loop server keep every
worker's RPC in flight on **one** socket per node, so under a modelled LAN
round trip it must deliver strictly more throughput.

The drivers fork real worker processes (no client GIL in the measurement)
and the modelled RTT dominates loopback cost, which is what makes the
comparison stable on a small CI runner: the binding constraint is in-flight
concurrency, not CPU.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.driver import MultiprocessConfig, run_multiprocess_benchmark
from repro.bench.perflog import record_wire_benchmark

#: 4 worker processes x 16 threads, 2 cache nodes, 20 ms modelled RTT.
#: Pooled deployment default: 4 x 2 = 8 in-flight per process (half the
#: workers wait); pipelined: all 16 in flight on one socket per node.
WORKERS = dict(
    processes=4,
    threads_per_process=16,
    interactions_per_thread=20,
    simulated_rpc_latency_seconds=2e-2,
    seed=7,
)


def test_pipelined_beats_pooled_at_equal_worker_count(benchmark):
    def measure():
        pooled = run_multiprocess_benchmark(
            MultiprocessConfig(
                transport="socket", socket_pool_size=4, label="pooled-default", **WORKERS
            )
        )
        pipelined = run_multiprocess_benchmark(
            MultiprocessConfig(
                transport="socket-pipelined", label="pipelined", **WORKERS
            )
        )
        return pooled, pipelined

    def run():
        # Best-of-2, second attempt only on a miss: the expected margin is
        # ~2x, so one rerun absorbs a transient scheduler stall (a wedged
        # forked worker on a busy runner) without hiding a real regression.
        pooled, pipelined = measure()
        if pipelined.ops_per_second < pooled.ops_per_second * 1.15:
            pooled, pipelined = measure()
        return pooled, pipelined

    pooled, pipelined = run_once(benchmark, run)
    print(f"\n{pooled.summary()}\n{pipelined.summary()}")
    for result in (pooled, pipelined):
        assert result.errors == 0
        assert result.interactions == 4 * 16 * 20
        assert result.hit_rate > 0.9  # warmed shared cache actually served
    # The headline assertion: same workers, fewer sockets, more throughput.
    # Measured ~2x on a single-core container (640 vs 1250 ops/s at 10 ms
    # RTT); 1.15x leaves room for scheduler noise without letting a
    # regression to serialized round trips pass.
    ratio = pipelined.ops_per_second / pooled.ops_per_second
    assert ratio >= 1.15, f"pipelined/pooled throughput ratio: {ratio:.2f}x"


def test_fast_wire_stack_beats_pickled_pipelining(benchmark):
    """Tentpole combined claim: binary codec + read lease + write coalescing
    beat the previous pipelined stack (pickle bodies, rendezvous reader, one
    sendmsg per response) at equal worker count.

    No modelled RTT here, unlike the test above: with the latency knob at
    zero the wall clock is wire and scheduling cost — exactly the three
    fronts this stack attacks.  The measured ops/s land in BENCH_wire.json.
    """
    workers = dict(WORKERS, simulated_rpc_latency_seconds=0.0)

    def measure():
        baseline = run_multiprocess_benchmark(
            MultiprocessConfig(
                transport="socket-pipelined",
                wire_codec="pickle",
                mux_read_lease=False,
                write_coalescing=False,
                label="pipelined-pickle",
                **workers,
            )
        )
        # Codec pinned, not defaulted: REPRO_WIRE_CODEC=pickle (the CI
        # fallback matrix entry) would otherwise turn the "fast stack" into
        # pickle bodies and quietly compare lease+coalescing alone.
        fast = run_multiprocess_benchmark(
            MultiprocessConfig(
                transport="socket-pipelined",
                wire_codec="binary",
                label="fast-stack",
                **workers,
            )
        )
        return baseline, fast

    def run():
        # Same best-of-2-on-miss policy as above: rerun once before calling
        # a transient stall a regression.
        baseline, fast = measure()
        if fast.ops_per_second < baseline.ops_per_second:
            baseline, fast = measure()
        return baseline, fast

    baseline, fast = run_once(benchmark, run)
    print(f"\n{baseline.summary()}\n{fast.summary()}")
    for result in (baseline, fast):
        assert result.errors == 0
        assert result.interactions == 4 * 16 * 20
        assert result.hit_rate > 0.9
    ratio = fast.ops_per_second / baseline.ops_per_second
    record_wire_benchmark(
        "multiprocess",
        {
            "workers": dict(processes=4, threads_per_process=16),
            "pickle_baseline_ops_per_second": round(baseline.ops_per_second, 1),
            "fast_stack_ops_per_second": round(fast.ops_per_second, 1),
            "speedup": round(ratio, 2),
        },
    )
    # The combined stack must not lose to the stack it replaces; the two
    # measured runs put the margin well above this floor, which is set low
    # because forked-worker wall clocks on a shared runner are noisy.
    assert ratio >= 1.0, f"fast-stack/pickled throughput ratio: {ratio:.2f}x"
