#!/usr/bin/env python3
"""Regenerate the paper's evaluation figures and table from the command line.

Examples:

    python examples/paper_experiments.py --experiment fig5a
    python examples/paper_experiments.py --experiment fig7 --full
    python examples/paper_experiments.py --experiment all

``--full`` uses larger datasets and longer measurement windows (slower but
smoother curves); the default quick settings finish each experiment in well
under a minute.  See EXPERIMENTS.md for the recorded paper-vs-measured
comparison.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench.experiments import (
    ExperimentSettings,
    chaos_openloop,
    concurrent_churn,
    concurrent_clients,
    figure5,
    figure6,
    figure7,
    figure8,
    figures_openloop,
    percore_openloop,
    pipelined_clients,
    repair_openloop,
    validity_tracking_overhead,
)

EXPERIMENTS = (
    "fig5a", "fig5b", "fig6a", "fig6b", "fig7", "fig8", "overhead",
    "concurrency", "concurrent-churn", "pipelined", "figures-openloop",
    "percore-openloop", "repair-openloop", "chaos-openloop",
)


def run_experiment(name: str, settings: ExperimentSettings, smoke: bool = False) -> None:
    started = time.time()
    if name == "fig5a":
        print(figure5("in-memory", settings=settings).format_table())
    elif name == "fig5b":
        print(figure5("disk-bound", settings=settings).format_table())
    elif name == "fig6a":
        print(figure6("in-memory", settings=settings).format_hit_rate_table())
    elif name == "fig6b":
        print(figure6("disk-bound", settings=settings).format_hit_rate_table())
    elif name == "fig7":
        print(figure7(settings=settings).format_table())
    elif name == "fig8":
        print(figure8(settings=settings).format_table())
    elif name == "overhead":
        print(validity_tracking_overhead().format_table())
    elif name == "concurrency":
        # Wall-clock throughput vs worker threads (beyond the paper's
        # figures): the socket series should scale, the in-process series
        # documents the GIL bound.
        print(concurrent_clients().format_table())
    elif name == "concurrent-churn":
        print(concurrent_churn().format_table())
    elif name == "pipelined":
        # The fast wire path, measured without the client GIL: K forked
        # worker processes per point, {pooled, pipelined} x {threaded,
        # eventloop}.  The pooled deployment default caps in-flight RPCs at
        # pool x nodes; the pipelined transport lifts the cap from one
        # socket per node.
        result = pipelined_clients()
        print(result.format_table())
        print(
            "pipelined+eventloop over pooled deployment default at "
            f"{result.process_counts[-1]} processes: "
            f"{result.speedup_at(result.process_counts[-1]):.2f}x"
        )
    elif name == "figures-openloop":
        # Figures 5-8 re-measured by the open-loop generator on the fast
        # wire stack (socket-pipelined + binary codec): fixed offered rates,
        # coordinated-omission-safe percentiles, results appended to
        # BENCH_figures.json.  --smoke shrinks to one configuration per
        # figure at one rate (CI schema validation, not benchmark numbers).
        result = figures_openloop(settings=settings, smoke=smoke)
        print(result.format_table())
        if result.recorded_path:
            print(f"recorded -> {result.recorded_path}")
    elif name == "percore-openloop":
        # Per-core cache nodes: the same fixed offered rate against
        # {1,2,4} nodes hosted as coordinator threads (one shared GIL)
        # vs one OS process per node (one core per node, pinned).  The
        # curve is appended to BENCH_wire.json section "percore"; on a
        # 4-core machine the process-hosted goodput at 4 nodes should
        # clear thread-hosted by >= 1.15x.  --smoke shrinks to one cell.
        result = percore_openloop(smoke=smoke)
        print(result.format_table())
        if 4 in result.node_counts:
            print(
                f"process-hosted over thread-hosted at 4 nodes: "
                f"{result.process_speedup_at(4):.2f}x "
                f"({result.cpu_count} cores"
                f"{'' if result.scaling_assertable else '; too few to assert scaling'})"
            )
        if result.recorded_path:
            print(f"recorded -> {result.recorded_path}")
    elif name == "repair-openloop":
        # Repair interference under fixed offered load: the budgeted
        # maintenance plane must re-replicate everything the synchronous
        # sweep does while keeping the foreground p99 near the no-repair
        # baseline.  --smoke shrinks the run (structure, not numbers).
        result = repair_openloop(smoke=smoke)
        print(result.format_table())
        print(
            "p99 vs no-repair baseline: synchronous sweep "
            f"{result.p99_ratio('synchronous sweep'):.2f}x, budgeted plane "
            f"{result.p99_ratio('budgeted plane'):.2f}x"
        )
    elif name == "chaos-openloop":
        # Chaos recovery under fixed offered load: SIGKILL one process-
        # hosted node mid-run and compare supervisor off (ring heals but
        # stays a node short) against supervisor on (detect, respawn,
        # gossip rejoin, budgeted re-warm: hit rate back to >= 90% of the
        # pre-kill baseline with no operator action).  Appended to the
        # "recovery" section of BENCH_wire.json.  --smoke shrinks the run
        # (structure, not numbers).
        result = chaos_openloop(smoke=smoke)
        print(result.format_table())
        supervised = result.run_named("supervisor on")
        print(
            "supervisor on: "
            + (
                f"hit rate restored in {supervised.recovery_seconds:.2f}s"
                if supervised.restored
                else "hit rate NOT restored within the run"
            )
            + f", {supervised.respawns} respawn(s), "
            f"{supervised.consistency_violations} consistency violation(s)"
        )
        if result.recorded_path:
            print(f"recorded -> {result.recorded_path}")
    else:
        raise SystemExit(f"unknown experiment {name!r}")
    print(f"[{name} finished in {time.time() - started:.1f}s]\n")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--experiment",
        default="all",
        choices=EXPERIMENTS + ("all",),
        help="which figure/table to regenerate (default: all)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the larger, slower experiment settings",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shrink the open-loop figure run to a schema-validating smoke",
    )
    args = parser.parse_args()

    settings = ExperimentSettings.full() if args.full else ExperimentSettings.quick()
    names = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    for name in names:
        run_experiment(name, settings, smoke=args.smoke)


if __name__ == "__main__":
    main()
