#!/usr/bin/env python3
"""A MediaWiki-flavoured example (paper section 7.2).

MediaWiki caches objects ranging from interface-message translations to
parsed page content.  Its port to TxCache cached pure functions of immutable
data (article revisions, titles) as well as mutable objects (user records
with edit counts), and relied on the staleness classification MediaWiki
already had for its replicated databases.

This example builds a miniature wiki on TxCache and shows:

* revision text and rendered pages cached as pure functions;
* the user object (with its edit count) automatically invalidated on every
  edit — the exact bug class the paper describes (a forgotten invalidation
  of the USER object) cannot happen, because there is nothing to forget;
* read-only page views tolerating replication-style staleness while edits
  always observe the latest state.

Run with:  python examples/wiki_cache.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import TxCacheDeployment
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema


def main() -> None:
    deployment = TxCacheDeployment(default_staleness=15.0)
    database = deployment.database
    database.create_table(
        TableSchema.build(
            "revisions",
            ["id", "page", "text", "author", "timestamp"],
            primary_key="id",
            indexes=["page"],
        )
    )
    database.create_table(
        TableSchema.build("pages", ["title", "latest_revision"], primary_key="title")
    )
    database.create_table(
        TableSchema.build("wiki_users", ["id", "name", "edit_count"], primary_key="id")
    )
    database.create_table(
        TableSchema.build(
            "messages", ["id", "key", "language", "text"], primary_key="id", indexes=["key"]
        )
    )
    database.bulk_load("wiki_users", [{"id": 1, "name": "alice", "edit_count": 0}])
    database.bulk_load(
        "messages",
        [
            {"id": 1, "key": "sidebar", "language": "en", "text": "Navigation"},
            {"id": 2, "key": "sidebar", "language": "de", "text": "Navigation (de)"},
        ],
    )

    client = deployment.client()

    # --- cacheable functions --------------------------------------------
    @client.cacheable
    def get_revision(revision_id):
        rows = client.query(Select("revisions", Eq("id", revision_id))).rows
        return rows[0] if rows else None

    @client.cacheable
    def get_user(user_id):
        return client.query(Select("wiki_users", Eq("id", user_id))).rows[0]

    @client.cacheable
    def localized_message(key, language):
        rows = client.query(Select("messages", Eq("key", key))).rows
        for row in rows:
            if row["language"] == language:
                return row["text"]
        return None

    @client.cacheable
    def render_page(title):
        page_rows = client.query(Select("pages", Eq("title", title))).rows
        if not page_rows:
            return f"<html>{title}: no such page</html>"
        revision = get_revision(page_rows[0]["latest_revision"])
        author = get_user(revision["author"])
        sidebar = localized_message("sidebar", "en")
        return (
            f"<html><nav>{sidebar}</nav><h1>{title}</h1>"
            f"<p>{revision['text']}</p>"
            f"<footer>last edited by {author['name']} "
            f"({author['edit_count']} edits)</footer></html>"
        )

    # --- write path -------------------------------------------------------
    revision_counter = iter(range(1, 1000))

    def edit_page(title, text, author_id=1):
        revision_id = next(revision_counter)
        with client.read_write():
            client.insert(
                "revisions",
                {
                    "id": revision_id,
                    "page": title,
                    "text": text,
                    "author": author_id,
                    "timestamp": deployment.clock.now(),
                },
            )
            if client.query(Select("pages", Eq("title", title))).rows:
                client.update("pages", Eq("title", title), {"latest_revision": revision_id})
            else:
                client.insert("pages", {"title": title, "latest_revision": revision_id})
            user = client.query(Select("wiki_users", Eq("id", author_id))).rows[0]
            client.update(
                "wiki_users", Eq("id", author_id), {"edit_count": user["edit_count"] + 1}
            )
        deployment.advance(0.5)

    # --- scenario ----------------------------------------------------------
    edit_page("Main_Page", "Welcome to the wiki!")
    with client.read_only():
        print(render_page("Main_Page"))

    # Render again: everything comes from the cache.
    before = client.stats.hits
    with client.read_only():
        render_page("Main_Page")
    print(f"\nsecond render used the cache ({client.stats.hits - before} hits, 0 queries)")

    # Edit the page: the rendered page AND the user object (edit count) are
    # invalidated automatically, with no invalidation code in edit_page().
    edit_page("Main_Page", "Welcome to the wiki! (now with more content)")
    with client.read_only(staleness=0):
        fresh = render_page("Main_Page")
    print("\nafter the edit:")
    print(fresh)
    assert "2 edits" in fresh and "more content" in fresh

    # A stale read within the replication-lag-style window stays consistent:
    # whichever snapshot it sees, the edit count matches the revision shown.
    with client.read_only(staleness=15):
        page = render_page("Main_Page")
        user = get_user(1)
    shown_edits = int(page.split("(")[-1].split(" ")[0])
    assert shown_edits == user["edit_count"]
    print(f"\nstale-but-consistent read: page shows {shown_edits} edits, "
          f"user object agrees ({user['edit_count']})")

    print("\nclient stats:", client.stats)


if __name__ == "__main__":
    main()
