#!/usr/bin/env python3
"""Demonstrate the anomaly TxCache prevents.

A tiny "bank" keeps a fixed total balance across accounts; every write
transfers money between two accounts atomically.  An application that reads
some balances from an application-level cache and others from the database
can observe a state in which money appears or disappears — unless the cache
is transactionally consistent.

The script runs the same interleaving twice:

* with a memcached-style cache ("no consistency" mode), counting how many
  read-only transactions observe a broken invariant;
* with TxCache's consistent mode, where the count is always zero.

Run with:  python examples/consistency_anomaly.py
"""

from __future__ import annotations

import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import ConsistencyMode, TxCacheDeployment
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema

ACCOUNTS = 6
INITIAL_BALANCE = 100
ROUNDS = 60


def build(mode: ConsistencyMode):
    deployment = TxCacheDeployment(mode=mode, default_staleness=30.0)
    deployment.database.create_table(
        TableSchema.build("accounts", ["id", "balance"], primary_key="id")
    )
    deployment.database.bulk_load(
        "accounts", [{"id": i, "balance": INITIAL_BALANCE} for i in range(ACCOUNTS)]
    )
    client = deployment.client(mode=mode)

    @client.cacheable(name="get_balance")
    def get_balance(account_id):
        return client.query(Select("accounts", Eq("id", account_id))).rows[0]["balance"]

    return deployment, client, get_balance


def run(mode: ConsistencyMode) -> int:
    deployment, client, get_balance = build(mode)
    rng = random.Random(42)

    # Warm the cache with every balance at the initial state.
    with client.read_only():
        for account in range(ACCOUNTS):
            get_balance(account)

    violations = 0
    for _ in range(ROUNDS):
        # A write transaction moves money between two random accounts.
        source, target = rng.sample(range(ACCOUNTS), 2)
        amount = rng.randint(1, 30)
        with client.read_write():
            balance = client.query(Select("accounts", Eq("id", source))).rows[0]["balance"]
            client.update("accounts", Eq("id", source), {"balance": balance - amount})
            balance = client.query(Select("accounts", Eq("id", target))).rows[0]["balance"]
            client.update("accounts", Eq("id", target), {"balance": balance + amount})
        deployment.advance(rng.uniform(0.05, 1.0))

        # A read-only transaction audits the books, reading half the accounts
        # through the cacheable function and half directly from the database.
        total = 0
        with client.read_only(staleness=30):
            for account in range(ACCOUNTS):
                if account % 2 == 0:
                    total += get_balance(account)
                else:
                    total += client.query(
                        Select("accounts", Eq("id", account))
                    ).rows[0]["balance"]
        if total != ACCOUNTS * INITIAL_BALANCE:
            violations += 1
    return violations


def main() -> None:
    expected_total = ACCOUNTS * INITIAL_BALANCE
    print(f"{ACCOUNTS} accounts, invariant: total balance == {expected_total}\n")

    broken = run(ConsistencyMode.NO_CONSISTENCY)
    print(
        f"memcached-style cache (no consistency): "
        f"{broken}/{ROUNDS} audit transactions saw a broken invariant"
    )

    consistent = run(ConsistencyMode.CONSISTENT)
    print(
        f"TxCache (transactional consistency):    "
        f"{consistent}/{ROUNDS} audit transactions saw a broken invariant"
    )
    assert consistent == 0


if __name__ == "__main__":
    main()
