#!/usr/bin/env python3
"""Quickstart: a five-minute tour of TxCache.

Builds a tiny deployment (database + cache cluster + pincushion), designates
two cacheable functions, and walks through the behaviour the paper promises:

1. the first call to a cacheable function misses and runs its queries;
2. repeated calls — even from other transactions and other application
   servers — hit the cache;
3. updating the database automatically invalidates the affected entries, with
   no application-managed keys or explicit invalidation calls;
4. a transaction with a staleness limit may see a slightly old but always
   *consistent* snapshot.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import TxCacheDeployment
from repro.db.query import Eq, Select
from repro.db.schema import TableSchema


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Set up a deployment and load a tiny schema.
    # ------------------------------------------------------------------
    deployment = TxCacheDeployment(cache_nodes=2, default_staleness=30.0)
    database = deployment.database
    database.create_table(
        TableSchema.build(
            "articles", ["id", "title", "body", "author"], primary_key="id", indexes=["author"]
        )
    )
    database.create_table(
        TableSchema.build("authors", ["id", "name", "article_count"], primary_key="id")
    )
    database.bulk_load("authors", [{"id": 1, "name": "alice", "article_count": 2}])
    database.bulk_load(
        "articles",
        [
            {"id": 1, "title": "Hello", "body": "first post", "author": 1},
            {"id": 2, "title": "Caching", "body": "and consistency", "author": 1},
        ],
    )

    client = deployment.client()

    # ------------------------------------------------------------------
    # 2. Designate cacheable functions (MAKE-CACHEABLE).
    # ------------------------------------------------------------------
    @client.cacheable
    def get_article(article_id):
        rows = client.query(Select("articles", Eq("id", article_id))).rows
        return rows[0] if rows else None

    @client.cacheable
    def author_page(author_id):
        author = client.query(Select("authors", Eq("id", author_id))).rows[0]
        articles = client.query(Select("articles", Eq("author", author_id))).rows
        # Nested cacheable calls: the page depends on each article too.
        bodies = {a["id"]: get_article(a["id"])["body"] for a in articles}
        return {"author": author["name"], "articles": len(articles), "preview": bodies}

    # ------------------------------------------------------------------
    # 3. Read-only transactions: first call misses, later calls hit.
    # ------------------------------------------------------------------
    with client.read_only():
        page = author_page(1)
    print("first render:", page)
    print(f"  -> hits={client.stats.hits} misses={client.stats.misses}")

    with client.read_only():
        author_page(1)
    print(f"second render from cache -> hits={client.stats.hits} misses={client.stats.misses}")

    # Another application server shares the same cache.
    other_server = deployment.client()

    @other_server.cacheable
    def get_article_elsewhere(article_id):
        rows = other_server.query(Select("articles", Eq("id", article_id))).rows
        return rows[0] if rows else None

    # ------------------------------------------------------------------
    # 4. Writes invalidate automatically.
    # ------------------------------------------------------------------
    with client.read_write():
        client.update("articles", Eq("id", 1), {"body": "first post (edited)"})
        client.update("authors", Eq("id", 1), {"article_count": 2})
    deployment.advance(1.0)
    print("article 1 edited; no explicit cache invalidation was written")

    with client.read_only(staleness=0):
        fresh = author_page(1)
    print("fresh render:", fresh)

    # ------------------------------------------------------------------
    # 5. Staleness limits: old but consistent snapshots are allowed.
    # ------------------------------------------------------------------
    with client.read_only(staleness=30):
        stale_page = author_page(1)
        stale_article = get_article(1)
    print("render within 30s staleness:", stale_page["preview"][1])
    print("  article body seen in the same transaction:", stale_article["body"])
    assert stale_page["preview"][1] == stale_article["body"], "consistent snapshot!"

    print("\nclient statistics:", client.stats)
    print("cache statistics:", deployment.cache.aggregate_stats())


if __name__ == "__main__":
    main()
