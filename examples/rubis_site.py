#!/usr/bin/env python3
"""Run the RUBiS auction site on TxCache and report cache behaviour.

This is the workload the paper evaluates (section 8): the standard RUBiS
"bidding" mix (~85% read-only browsing, ~15% writes) driven by emulated user
sessions against the scaled-down in-memory database configuration.  The
script reports hit rates, the miss-type breakdown, invalidation traffic, and
the interaction mix.

Run with:  python examples/rubis_site.py [interactions]
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import TxCacheDeployment
from repro.apps.rubis import (
    BIDDING_MIX,
    IN_MEMORY_CONFIG,
    RubisApp,
    RubisClientSession,
    create_rubis_schema,
    populate_database,
)


def main(interactions: int = 2000) -> None:
    print("setting up the RUBiS deployment (scaled in-memory configuration)...")
    deployment = TxCacheDeployment(
        cache_nodes=2, cache_capacity_bytes_per_node=512 * 1024, default_staleness=30.0
    )
    create_rubis_schema(deployment.database)
    dataset = populate_database(deployment.database, IN_MEMORY_CONFIG.scaled(150), seed=1)
    client = deployment.client()
    app = RubisApp(client, dataset)

    sessions = [
        RubisClientSession(app, BIDDING_MIX, seed=i, staleness=30.0, now_fn=deployment.clock.now)
        for i in range(16)
    ]

    print(f"running {interactions} interactions of the bidding mix...")
    for step in range(interactions):
        session = sessions[step % len(sessions)]
        session.step()
        deployment.advance(0.02)
        if (step + 1) % 500 == 0:
            deployment.housekeeping()
            print(
                f"  {step + 1:5d} interactions, hit rate so far "
                f"{client.stats.hit_rate:6.1%}, cache entries {deployment.cache.entry_count}"
            )

    print("\n--- results ---")
    stats = client.stats
    total_rw = sum(s.read_write_count for s in sessions)
    print(f"interactions executed:      {interactions}")
    print(f"read/write fraction:        {total_rw / interactions:.1%}")
    print(f"cacheable calls:            {stats.cacheable_calls}")
    print(f"cache hit rate:             {stats.hit_rate:.1%}")
    print("miss breakdown:")
    for miss_type, fraction in stats.miss_fractions().items():
        print(f"  {miss_type.value:20s} {fraction:6.1%}")
    print(f"database RO transactions:   {deployment.database.stats.ro_transactions}")
    print(f"database RW commits:        {deployment.database.stats.commits}")
    print(f"invalidation messages:      {deployment.database.stats.invalidations_published}")
    cache_stats = deployment.cache.aggregate_stats()
    print(f"cache entries invalidated:  {cache_stats.entries_invalidated}")
    print(f"cache LRU evictions:        {cache_stats.lru_evictions}")
    print(f"cache bytes in use:         {deployment.cache.used_bytes // 1024} KiB")

    interaction_counts = {}
    for session in sessions:
        for name, count in session.interactions_run.items():
            interaction_counts[name] = interaction_counts.get(name, 0) + count
    top = sorted(interaction_counts.items(), key=lambda kv: -kv[1])[:8]
    print("most frequent interactions:", ", ".join(f"{n} ({c})" for n, c in top))


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    main(count)
